#ifndef DJ_OPS_MAPPERS_LATEX_MAPPERS_H_
#define DJ_OPS_MAPPERS_LATEX_MAPPERS_H_

#include <string>
#include <vector>

#include "ops/op_base.h"
#include "ops/op_effects.h"
#include "ops/param_spec.h"

namespace dj::ops {

/// expand_macro_mapper: inlines simple LaTeX \newcommand / \def macros that
/// take no arguments, so downstream filters see the expanded text (paper OP
/// usage: LaTeX source files).
class ExpandMacroMapper : public Mapper {
 public:
  explicit ExpandMacroMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  std::vector<std::string> Tags() const override { return {"latex"}; }
  double CostEstimate() const override { return 0.8; }
};

/// remove_bibliography_mapper: truncates the document at the bibliography
/// (\begin{thebibliography}, \bibliography{...}, or a "References" heading).
class RemoveBibliographyMapper : public Mapper {
 public:
  explicit RemoveBibliographyMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  std::vector<std::string> Tags() const override { return {"latex"}; }
  double CostEstimate() const override { return 0.2; }
};

/// remove_comments_mapper: removes LaTeX % line comments (keeping escaped
/// \%); with param `inline_only=false` whole comment lines are dropped and
/// trailing comments trimmed.
class RemoveCommentsMapper : public Mapper {
 public:
  explicit RemoveCommentsMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  std::vector<std::string> Tags() const override { return {"latex"}; }
  double CostEstimate() const override { return 0.3; }
};

/// remove_header_mapper: drops the LaTeX preamble — everything before
/// \begin{document} when present, otherwise leading \documentclass /
/// \usepackage / \title / \author / \maketitle lines. With param
/// `drop_no_head=true` (default) documents without any recognizable header
/// are kept unchanged.
class RemoveHeaderMapper : public Mapper {
 public:
  explicit RemoveHeaderMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  std::vector<std::string> Tags() const override { return {"latex"}; }
  double CostEstimate() const override { return 0.3; }
};

/// remove_table_text_mapper: removes table-like runs of lines — LaTeX
/// tabular environments and plain-text tables (lines dominated by '|', '&',
/// or aligned number columns), which read as noise to language models.
class RemoveTableTextMapper : public Mapper {
 public:
  explicit RemoveTableTextMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  std::vector<std::string> Tags() const override {
    return {"latex", "general"};
  }
  double CostEstimate() const override { return 0.6; }

 private:
  int64_t min_col_count_;
};

/// Declared parameter schemas of the LaTeX mappers above.
std::vector<OpSchema> LatexMapperSchemas();

/// Declared effect signatures of this family (registered next to the
/// schemas; see OpEffects).
std::vector<OpEffects> LatexMapperEffects();

}  // namespace dj::ops

#endif  // DJ_OPS_MAPPERS_LATEX_MAPPERS_H_
