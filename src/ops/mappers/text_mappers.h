#ifndef DJ_OPS_MAPPERS_TEXT_MAPPERS_H_
#define DJ_OPS_MAPPERS_TEXT_MAPPERS_H_

#include <string>
#include <vector>

#include "ops/op_base.h"
#include "ops/op_effects.h"
#include "ops/param_spec.h"

namespace dj::ops {

/// fix_unicode_mapper: repairs mojibake and strips control / zero-width /
/// replacement characters (paper OP example: "fix messy codes").
class FixUnicodeMapper : public Mapper {
 public:
  explicit FixUnicodeMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.5; }
};

/// lower_case_mapper: ASCII lower-casing.
class LowerCaseMapper : public Mapper {
 public:
  explicit LowerCaseMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.1; }
};

/// punctuation_normalization_mapper: unicode punctuation -> ASCII.
class PunctuationNormalizationMapper : public Mapper {
 public:
  explicit PunctuationNormalizationMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.3; }
};

/// remove_long_words_mapper: drops words longer than max_len codepoints
/// (default 50) — typically base64 blobs and URLs-in-disguise.
class RemoveLongWordsMapper : public Mapper {
 public:
  explicit RemoveLongWordsMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.4; }

 private:
  int64_t max_len_;
};

/// remove_repeat_sentences_mapper: removes repeated sentences, keeping the
/// first occurrence (within one sample).
class RemoveRepeatSentencesMapper : public Mapper {
 public:
  explicit RemoveRepeatSentencesMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 1.0; }

 private:
  int64_t min_repeat_sentence_length_;
};

/// remove_specific_chars_mapper: removes the characters listed in
/// `chars_to_remove` (default "◆●■►▼▲▴∆▻▷❖♡□"-style bullets).
class RemoveSpecificCharsMapper : public Mapper {
 public:
  explicit RemoveSpecificCharsMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.3; }

 private:
  std::string chars_;
};

/// remove_words_with_incorrect_substrings_mapper: drops words containing any
/// configured substring (`substrings`, default http/www/.com artifacts).
class RemoveWordsWithIncorrectSubstringsMapper : public Mapper {
 public:
  explicit RemoveWordsWithIncorrectSubstringsMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.5; }

 private:
  std::vector<std::string> substrings_;
};

/// sentence_split_mapper: re-segments text to one sentence per line.
class SentenceSplitMapper : public Mapper {
 public:
  explicit SentenceSplitMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.8; }
};

/// whitespace_normalization_mapper: collapses whitespace runs.
class WhitespaceNormalizationMapper : public Mapper {
 public:
  explicit WhitespaceNormalizationMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.2; }
};

/// chinese_convert_mapper: traditional -> simplified Chinese for a table of
/// common characters (a compact stand-in for OpenCC).
class ChineseConvertMapper : public Mapper {
 public:
  explicit ChineseConvertMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  std::vector<std::string> Tags() const override { return {"zh"}; }
  double CostEstimate() const override { return 0.4; }
};

/// Declared parameter schemas of the text mappers above.
std::vector<OpSchema> TextMapperSchemas();

/// Declared effect signatures of this family (registered next to the
/// schemas; see OpEffects).
std::vector<OpEffects> TextMapperEffects();

}  // namespace dj::ops

#endif  // DJ_OPS_MAPPERS_TEXT_MAPPERS_H_
