#ifndef DJ_OPS_MAPPERS_CLEAN_MAPPERS_H_
#define DJ_OPS_MAPPERS_CLEAN_MAPPERS_H_

#include <vector>

#include "ops/op_base.h"
#include "ops/op_effects.h"
#include "ops/param_spec.h"

namespace dj::ops {

/// clean_copyright_mapper: removes a leading comment block (/* */ or runs of
/// //, #, * lines) when it mentions copyright/license — the boilerplate
/// header of source files (paper OP example: "clean copyright").
/// Params: none beyond text_key.
class CleanCopyrightMapper : public Mapper {
 public:
  explicit CleanCopyrightMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  std::vector<std::string> Tags() const override { return {"code"}; }
  double CostEstimate() const override { return 0.3; }
};

/// clean_email_mapper: removes email addresses.
/// Params: repl (string, default "").
class CleanEmailMapper : public Mapper {
 public:
  explicit CleanEmailMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.4; }

 private:
  std::string repl_;
};

/// clean_html_mapper: strips HTML markup — drops <script>/<style> blocks,
/// turns <br> and block-level closes into newlines, removes remaining tags,
/// unescapes common entities.
class CleanHtmlMapper : public Mapper {
 public:
  explicit CleanHtmlMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.8; }
};

/// clean_ip_mapper: removes IPv4 addresses (each octet <= 255).
/// Params: repl (string, default "").
class CleanIpMapper : public Mapper {
 public:
  explicit CleanIpMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.3; }

 private:
  std::string repl_;
};

/// clean_links_mapper: removes http(s)/ftp URLs and www.-prefixed links.
/// Params: repl (string, default "").
class CleanLinksMapper : public Mapper {
 public:
  explicit CleanLinksMapper(const json::Value& config);
  Result<std::string> TransformText(std::string_view input,
                                    SampleContext* ctx) const override;
  double CostEstimate() const override { return 0.4; }

 private:
  std::string repl_;
};

/// Declared parameter schemas of the cleaning mappers above.
std::vector<OpSchema> CleanMapperSchemas();

/// Declared effect signatures of this family (registered next to the
/// schemas; see OpEffects).
std::vector<OpEffects> CleanMapperEffects();

}  // namespace dj::ops

#endif  // DJ_OPS_MAPPERS_CLEAN_MAPPERS_H_
