#include "ops/mappers/text_mappers.h"

#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "text/normalize.h"
#include "text/utf8.h"

namespace dj::ops {
namespace {

/// Splits `input` into word / non-word runs and rebuilds it, dropping words
/// for which `drop(word)` is true along with one adjacent space.
template <typename DropFn>
std::string RebuildDroppingWords(std::string_view input, DropFn&& drop) {
  std::string out;
  out.reserve(input.size());
  size_t i = 0;
  while (i < input.size()) {
    if (std::isspace(static_cast<unsigned char>(input[i]))) {
      out.push_back(input[i]);
      ++i;
      continue;
    }
    size_t start = i;
    while (i < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    std::string_view word = input.substr(start, i - start);
    if (drop(word)) {
      // Swallow one following space so double gaps don't appear.
      if (i < input.size() && input[i] == ' ') ++i;
      continue;
    }
    out.append(word);
  }
  return out;
}

}  // namespace

// ------------------------------------------------------ FixUnicodeMapper --

FixUnicodeMapper::FixUnicodeMapper(const json::Value& config)
    : Mapper("fix_unicode_mapper", config) {}

Result<std::string> FixUnicodeMapper::TransformText(std::string_view input,
                                                    SampleContext*) const {
  return text::FixUnicode(input);
}

// ------------------------------------------------------- LowerCaseMapper --

LowerCaseMapper::LowerCaseMapper(const json::Value& config)
    : Mapper("lower_case_mapper", config) {}

Result<std::string> LowerCaseMapper::TransformText(std::string_view input,
                                                   SampleContext*) const {
  return AsciiToLower(input);
}

// ------------------------------------- PunctuationNormalizationMapper --

PunctuationNormalizationMapper::PunctuationNormalizationMapper(
    const json::Value& config)
    : Mapper("punctuation_normalization_mapper", config) {}

Result<std::string> PunctuationNormalizationMapper::TransformText(
    std::string_view input, SampleContext*) const {
  return text::NormalizePunctuation(input);
}

// ------------------------------------------------- RemoveLongWordsMapper --

RemoveLongWordsMapper::RemoveLongWordsMapper(const json::Value& config)
    : Mapper("remove_long_words_mapper", config),
      max_len_(Param("max_len", static_cast<int64_t>(50))) {
  SetEffectiveParam("max_len", json::Value(max_len_));
}

Result<std::string> RemoveLongWordsMapper::TransformText(
    std::string_view input, SampleContext*) const {
  size_t limit = static_cast<size_t>(max_len_);
  return RebuildDroppingWords(input, [limit](std::string_view word) {
    return text::CodepointCount(word) > limit;
  });
}

// ------------------------------------------- RemoveRepeatSentencesMapper --

RemoveRepeatSentencesMapper::RemoveRepeatSentencesMapper(
    const json::Value& config)
    : Mapper("remove_repeat_sentences_mapper", config),
      min_repeat_sentence_length_(
          Param("min_repeat_sentence_length", static_cast<int64_t>(2))) {
  SetEffectiveParam("min_repeat_sentence_length",
                    json::Value(min_repeat_sentence_length_));
}

Result<std::string> RemoveRepeatSentencesMapper::TransformText(
    std::string_view input, SampleContext* ctx) const {
  const std::vector<std::string>& sentences = ctx->Sentences();
  if (sentences.size() <= 1) return std::string(input);
  std::unordered_set<std::string> seen;
  std::string out;
  out.reserve(input.size());
  bool removed_any = false;
  for (const std::string& sentence : sentences) {
    if (text::CodepointCount(sentence) >=
        static_cast<size_t>(min_repeat_sentence_length_)) {
      std::string key = AsciiToLower(StripAsciiWhitespace(sentence));
      if (!seen.insert(std::move(key)).second) {
        removed_any = true;
        continue;
      }
    }
    if (!out.empty()) out.push_back(' ');
    out += sentence;
  }
  // Rebuilding loses line structure; keep the input untouched when there
  // was nothing to remove.
  if (!removed_any) return std::string(input);
  return out;
}

// -------------------------------------------- RemoveSpecificCharsMapper --

RemoveSpecificCharsMapper::RemoveSpecificCharsMapper(const json::Value& config)
    : Mapper("remove_specific_chars_mapper", config),
      chars_(Param("chars_to_remove",
                   "\xE2\x97\x86\xE2\x97\x8F\xE2\x96\xA0\xE2\x96\xBA"
                   "\xE2\x96\xBC\xE2\x96\xB2\xE2\x9D\x96\xE2\x99\xA1"
                   "\xE2\x96\xA1\xE2\x98\x85\xE2\x98\x86")) {
  SetEffectiveParam("chars_to_remove", json::Value(chars_));
}

Result<std::string> RemoveSpecificCharsMapper::TransformText(
    std::string_view input, SampleContext*) const {
  return text::RemoveChars(input, chars_);
}

// --------------------------- RemoveWordsWithIncorrectSubstringsMapper --

RemoveWordsWithIncorrectSubstringsMapper::
    RemoveWordsWithIncorrectSubstringsMapper(const json::Value& config)
    : Mapper("remove_words_with_incorrect_substrings_mapper", config) {
  const json::Value* list =
      config.is_object() ? config.as_object().Find("substrings") : nullptr;
  if (list != nullptr && list->is_array()) {
    for (const auto& v : list->as_array()) {
      if (v.is_string()) substrings_.push_back(v.as_string());
    }
  }
  if (substrings_.empty()) {
    substrings_ = {"http", "www", ".com", "href", "//"};
  }
  json::Array echo;
  for (const auto& s : substrings_) echo.emplace_back(s);
  SetEffectiveParam("substrings", json::Value(std::move(echo)));
}

Result<std::string> RemoveWordsWithIncorrectSubstringsMapper::TransformText(
    std::string_view input, SampleContext*) const {
  return RebuildDroppingWords(input, [this](std::string_view word) {
    for (const std::string& sub : substrings_) {
      if (word.find(sub) != std::string_view::npos) return true;
    }
    return false;
  });
}

// --------------------------------------------------- SentenceSplitMapper --

SentenceSplitMapper::SentenceSplitMapper(const json::Value& config)
    : Mapper("sentence_split_mapper", config) {}

Result<std::string> SentenceSplitMapper::TransformText(
    std::string_view input, SampleContext* ctx) const {
  std::string out;
  out.reserve(input.size());
  for (const std::string& sentence : ctx->Sentences()) {
    out += sentence;
    out.push_back('\n');
  }
  if (!out.empty()) out.pop_back();
  return out;
}

// ------------------------------------- WhitespaceNormalizationMapper --

WhitespaceNormalizationMapper::WhitespaceNormalizationMapper(
    const json::Value& config)
    : Mapper("whitespace_normalization_mapper", config) {}

Result<std::string> WhitespaceNormalizationMapper::TransformText(
    std::string_view input, SampleContext*) const {
  return text::NormalizeWhitespace(input);
}

// -------------------------------------------------- ChineseConvertMapper --

ChineseConvertMapper::ChineseConvertMapper(const json::Value& config)
    : Mapper("chinese_convert_mapper", config) {}

Result<std::string> ChineseConvertMapper::TransformText(
    std::string_view input, SampleContext*) const {
  // Compact traditional -> simplified table covering frequent characters.
  static const std::unordered_map<uint32_t, uint32_t>& kMap = *[] {
    auto* m = new std::unordered_map<uint32_t, uint32_t>{
        {0x570B, 0x56FD},  // 國 -> 国
        {0x9AD4, 0x4F53},  // 體 -> 体
        {0x5B78, 0x5B66},  // 學 -> 学
        {0x6703, 0x4F1A},  // 會 -> 会
        {0x9F8D, 0x9F99},  // 龍 -> 龙
        {0x9EBC, 0x4E48},  // 麼 -> 么
        {0x7063, 0x6E7E},  // 灣 -> 湾
        {0x8A9E, 0x8BED},  // 語 -> 语
        {0x66F8, 0x4E66},  // 書 -> 书
        {0x9580, 0x95E8},  // 門 -> 门
        {0x99AC, 0x9A6C},  // 馬 -> 马
        {0x98A8, 0x98CE},  // 風 -> 风
        {0x96FB, 0x7535},  // 電 -> 电
        {0x8ECA, 0x8F66},  // 車 -> 车
        {0x9577, 0x957F},  // 長 -> 长
        {0x6642, 0x65F6},  // 時 -> 时
        {0x5F9E, 0x4ECE},  // 從 -> 从
        {0x7576, 0x5F53},  // 當 -> 当
        {0x767C, 0x53D1},  // 發 -> 发
        {0x9EDE, 0x70B9},  // 點 -> 点
    };
    return m;
  }();
  std::string out;
  out.reserve(input.size());
  size_t pos = 0;
  while (pos < input.size()) {
    size_t start = pos;
    uint32_t cp;
    text::DecodeUtf8(input, &pos, &cp);
    auto it = kMap.find(cp);
    if (it != kMap.end()) {
      text::EncodeUtf8(it->second, &out);
    } else {
      out.append(input.substr(start, pos - start));
    }
  }
  return out;
}

std::vector<OpSchema> TextMapperSchemas() {
  std::vector<OpSchema> out;
  out.emplace_back("fix_unicode_mapper", OpKind::kMapper);
  out.emplace_back("lower_case_mapper", OpKind::kMapper);
  out.emplace_back("punctuation_normalization_mapper", OpKind::kMapper);
  out.emplace_back(OpSchema("remove_long_words_mapper", OpKind::kMapper)
                       .Int("max_len", 50, 1, kParamInf,
                            "drop words longer than this many codepoints"));
  out.emplace_back(
      OpSchema("remove_repeat_sentences_mapper", OpKind::kMapper)
          .Int("min_repeat_sentence_length", 2, 0, kParamInf,
               "sentences shorter than this never count as repeats"));
  out.emplace_back(
      OpSchema("remove_specific_chars_mapper", OpKind::kMapper)
          .StrNoDefault("chars_to_remove",
                        "characters to strip (default: bullet glyphs)"));
  out.emplace_back(
      OpSchema("remove_words_with_incorrect_substrings_mapper",
               OpKind::kMapper)
          .List("substrings",
                "drop words containing any of these substrings"));
  out.emplace_back("sentence_split_mapper", OpKind::kMapper);
  out.emplace_back("whitespace_normalization_mapper", OpKind::kMapper);
  out.emplace_back("chinese_convert_mapper", OpKind::kMapper);
  return out;
}

std::vector<OpEffects> TextMapperEffects() {
  std::vector<OpEffects> out;
  for (const char* name : {
           "fix_unicode_mapper",
           "lower_case_mapper",
           "punctuation_normalization_mapper",
           "remove_long_words_mapper",
           "remove_repeat_sentences_mapper",
           "remove_specific_chars_mapper",
           "remove_words_with_incorrect_substrings_mapper",
           "sentence_split_mapper",
           "whitespace_normalization_mapper",
           "chinese_convert_mapper",
       }) {
    out.emplace_back(OpEffects(name, Cardinality::kRowPreserving)
                         .Reads("@text_key")
                         .Writes("@text_key"));
  }
  return out;
}
}  // namespace dj::ops
