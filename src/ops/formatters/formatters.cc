#include "ops/formatters/formatters.h"

#include <unordered_map>

#include "common/string_util.h"
#include "data/io.h"
#include "json/parser.h"

namespace dj::ops {
namespace {

std::string SuffixOf(std::string_view path) {
  size_t slash = path.find_last_of('/');
  std::string_view base =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  if (dot == std::string_view::npos) return "";
  return AsciiToLower(base.substr(dot));
}

std::string LanguageFromSuffix(std::string_view suffix) {
  static const std::unordered_map<std::string_view, std::string_view> kMap = {
      {".py", "python"}, {".cpp", "cpp"},   {".cc", "cpp"},
      {".h", "cpp"},     {".hpp", "cpp"},   {".c", "c"},
      {".js", "javascript"}, {".ts", "typescript"}, {".java", "java"},
      {".go", "go"},     {".rs", "rust"},   {".rb", "ruby"},
      {".sh", "shell"},  {".sql", "sql"},   {".cs", "csharp"},
      {".php", "php"},   {".scala", "scala"}, {".kt", "kotlin"}};
  auto it = kMap.find(suffix);
  return it == kMap.end() ? "unknown" : std::string(it->second);
}

/// Parses one CSV record starting at *pos; supports RFC-4180 quoting.
std::vector<std::string> ParseCsvRecord(std::string_view content, size_t* pos,
                                        char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  while (*pos < content.size()) {
    char c = content[*pos];
    if (in_quotes) {
      if (c == '"') {
        if (*pos + 1 < content.size() && content[*pos + 1] == '"') {
          current.push_back('"');
          ++*pos;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\n') {
      ++*pos;
      break;
    } else if (c != '\r') {
      current.push_back(c);
    }
    ++*pos;
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

// ------------------------------------------------------- JsonlFormatter --

JsonlFormatter::JsonlFormatter(const json::Value& config)
    : Formatter("jsonl_formatter", config) {}

Result<data::Dataset> JsonlFormatter::LoadFromString(std::string_view content,
                                                     std::string_view origin) {
  auto r = data::ParseJsonl(content);
  if (!r.ok()) {
    return Status::Corruption(std::string(origin) + ": " +
                              r.status().message());
  }
  return r;
}

// -------------------------------------------------------- JsonFormatter --

JsonFormatter::JsonFormatter(const json::Value& config)
    : Formatter("json_formatter", config) {}

Result<data::Dataset> JsonFormatter::LoadFromString(std::string_view content,
                                                    std::string_view origin) {
  auto r = json::ParseStrict(content);
  if (!r.ok()) {
    return Status::Corruption(std::string(origin) + ": " +
                              r.status().message());
  }
  data::Dataset ds;
  json::Value root = std::move(r).value();
  if (root.is_object()) {
    ds.AppendSample(data::Sample(std::move(root.as_object())));
    return ds;
  }
  if (!root.is_array()) {
    return Status::Corruption(std::string(origin) +
                              ": expected JSON array or object");
  }
  for (json::Value& v : root.as_array()) {
    if (!v.is_object()) {
      return Status::Corruption(std::string(origin) +
                                ": array elements must be objects");
    }
    ds.AppendSample(data::Sample(std::move(v.as_object())));
  }
  return ds;
}

// --------------------------------------------------------- TxtFormatter --

TxtFormatter::TxtFormatter(const json::Value& config)
    : Formatter("txt_formatter", config), per_line_(Param("per_line", false)) {
  SetEffectiveParam("per_line", json::Value(per_line_));
}

Result<data::Dataset> TxtFormatter::LoadFromString(std::string_view content,
                                                   std::string_view origin) {
  data::Dataset ds;
  auto make_sample = [&](std::string text) {
    data::Sample s = data::Sample::FromText(std::move(text));
    s.Set("meta.source", json::Value(std::string(origin)));
    ds.AppendSample(s);
  };
  if (per_line_) {
    for (const std::string& line : SplitLines(content)) {
      if (StripAsciiWhitespace(line).empty()) continue;
      make_sample(line);
    }
  } else {
    make_sample(std::string(content));
  }
  return ds;
}

// --------------------------------------------------------- CsvFormatter --

CsvFormatter::CsvFormatter(const json::Value& config)
    : CsvFormatter("csv_formatter", config, ',') {}

CsvFormatter::CsvFormatter(std::string name, const json::Value& config,
                           char sep)
    : Formatter(std::move(name), config), sep_(sep) {}

TsvFormatter::TsvFormatter(const json::Value& config)
    : CsvFormatter("tsv_formatter", config, '\t') {}

Result<data::Dataset> CsvFormatter::LoadFromString(std::string_view content,
                                                   std::string_view origin) {
  size_t pos = 0;
  if (content.empty()) return data::Dataset();
  std::vector<std::string> header = ParseCsvRecord(content, &pos, sep_);
  if (header.empty()) {
    return Status::Corruption(std::string(origin) + ": empty header row");
  }
  // Which column carries the text?
  size_t text_col = 0;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "text") {
      text_col = i;
      break;
    }
  }
  data::Dataset ds;
  while (pos < content.size()) {
    std::vector<std::string> fields = ParseCsvRecord(content, &pos, sep_);
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != header.size()) {
      return Status::Corruption(std::string(origin) + ": row with " +
                                std::to_string(fields.size()) +
                                " fields, header has " +
                                std::to_string(header.size()));
    }
    data::Sample s;
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i == text_col) {
        s.Set(data::kTextField, json::Value(std::move(fields[i])));
      } else {
        // Numeric-looking meta values parse as numbers.
        int64_t iv;
        double dv;
        if (ParseInt64(fields[i], &iv)) {
          s.Set("meta." + header[i], json::Value(iv));
        } else if (ParseDouble(fields[i], &dv)) {
          s.Set("meta." + header[i], json::Value(dv));
        } else {
          s.Set("meta." + header[i], json::Value(std::move(fields[i])));
        }
      }
    }
    ds.AppendSample(s);
  }
  return ds;
}

// -------------------------------------------------------- CodeFormatter --

CodeFormatter::CodeFormatter(const json::Value& config)
    : Formatter("code_formatter", config) {}

Result<data::Dataset> CodeFormatter::LoadFromString(std::string_view content,
                                                    std::string_view origin) {
  std::string suffix = SuffixOf(origin);
  data::Sample s = data::Sample::FromText(std::string(content));
  s.Set("meta.source", json::Value(std::string(origin)));
  s.Set("meta.suffix", json::Value(suffix));
  s.Set("meta.language", json::Value(LanguageFromSuffix(suffix)));
  data::Dataset ds;
  ds.AppendSample(s);
  return ds;
}

// ---------------------------------------------------------- LoadDataset --

Result<data::Dataset> LoadDataset(const std::string& path, ThreadPool* pool) {
  // Binary containers bypass the formatter layer entirely (SuffixOf would
  // see only ".djlz" for the compound suffix).
  if (EndsWith(path, ".djds") || EndsWith(path, ".djds.djlz")) {
    return data::ImportDataset(path, pool);
  }
  std::string suffix = SuffixOf(path);
  json::Value empty_config{json::Object()};
  if (suffix == ".jsonl" || suffix == ".ndjson") {
    return data::ReadJsonl(path, pool);
  }
  if (suffix == ".json") {
    return JsonFormatter(empty_config).LoadFile(path);
  }
  if (suffix == ".txt" || suffix == ".md" || suffix == ".html" ||
      suffix == ".tex" || suffix == "") {
    return TxtFormatter(empty_config).LoadFile(path);
  }
  if (suffix == ".csv") {
    return CsvFormatter(empty_config).LoadFile(path);
  }
  if (suffix == ".tsv") {
    return TsvFormatter(empty_config).LoadFile(path);
  }
  // Everything else is treated as source code.
  return CodeFormatter(empty_config).LoadFile(path);
}

std::vector<OpSchema> FormatterSchemas() {
  std::vector<OpSchema> out;
  out.emplace_back("jsonl_formatter", OpKind::kFormatter);
  out.emplace_back("json_formatter", OpKind::kFormatter);
  out.emplace_back(OpSchema("txt_formatter", OpKind::kFormatter)
                       .Bool("per_line", false,
                             "each non-empty line becomes its own sample"));
  out.emplace_back("csv_formatter", OpKind::kFormatter);
  out.emplace_back("tsv_formatter", OpKind::kFormatter);
  out.emplace_back("code_formatter", OpKind::kFormatter);
  return out;
}


std::vector<OpEffects> FormatterEffects() {
  std::vector<OpEffects> out;
  for (const char* name :
       {"jsonl_formatter", "json_formatter", "txt_formatter", "csv_formatter",
        "tsv_formatter", "code_formatter"}) {
    // Formatters materialize rows from external bytes: they populate the
    // text and meta columns and read nothing from the dataset.
    out.emplace_back(OpEffects(name, Cardinality::kRowPreserving)
                         .Writes("@text_key")
                         .Writes("meta"));
  }
  return out;
}
}  // namespace dj::ops
