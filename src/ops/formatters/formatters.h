#ifndef DJ_OPS_FORMATTERS_FORMATTERS_H_
#define DJ_OPS_FORMATTERS_FORMATTERS_H_

#include <string>
#include <vector>

#include "ops/op_base.h"
#include "ops/op_effects.h"
#include "ops/param_spec.h"

namespace dj::ops {

/// jsonl_formatter: one strict-JSON object per line.
class JsonlFormatter : public Formatter {
 public:
  explicit JsonlFormatter(const json::Value& config);
  Result<data::Dataset> LoadFromString(std::string_view content,
                                       std::string_view origin) override;
};

/// json_formatter: a JSON array of objects (or one object).
class JsonFormatter : public Formatter {
 public:
  explicit JsonFormatter(const json::Value& config);
  Result<data::Dataset> LoadFromString(std::string_view content,
                                       std::string_view origin) override;
};

/// txt_formatter: plain text. With `per_line=true` every non-empty line is a
/// sample; otherwise the whole content is one sample.
class TxtFormatter : public Formatter {
 public:
  explicit TxtFormatter(const json::Value& config);
  Result<data::Dataset> LoadFromString(std::string_view content,
                                       std::string_view origin) override;

 private:
  bool per_line_;
};

/// csv_formatter / tsv_formatter: header row defines columns; a column named
/// "text" (or the first column otherwise) becomes the text field, the rest
/// go under "meta". Quoted fields with embedded separators are supported.
class CsvFormatter : public Formatter {
 public:
  explicit CsvFormatter(const json::Value& config);
  Result<data::Dataset> LoadFromString(std::string_view content,
                                       std::string_view origin) override;

 protected:
  CsvFormatter(std::string name, const json::Value& config, char sep);

 private:
  char sep_;
};

class TsvFormatter : public CsvFormatter {
 public:
  explicit TsvFormatter(const json::Value& config);
};

/// code_formatter: a source file becomes one sample with meta.language
/// derived from the file suffix and meta.suffix recorded.
class CodeFormatter : public Formatter {
 public:
  explicit CodeFormatter(const json::Value& config);
  Result<data::Dataset> LoadFromString(std::string_view content,
                                       std::string_view origin) override;
  std::vector<std::string> Tags() const override { return {"code"}; }
};

/// Dispatches on the path suffix (.jsonl/.json/.txt/.md/.csv/.tsv/code
/// suffixes, plus the binary .djds / .djds.djlz containers) and loads with
/// the matching formatter — the unified loading entry point of paper
/// Sec. 4.1. JSONL and binary containers parse/decode on `pool` when given.
Result<data::Dataset> LoadDataset(const std::string& path,
                                  ThreadPool* pool = nullptr);

/// Declared parameter schemas of the formatter OPs above.
std::vector<OpSchema> FormatterSchemas();

/// Declared effect signatures of this family (registered next to the
/// schemas; see OpEffects).
std::vector<OpEffects> FormatterEffects();

}  // namespace dj::ops

#endif  // DJ_OPS_FORMATTERS_FORMATTERS_H_
