#ifndef DJ_OPS_PARAM_SPEC_H_
#define DJ_OPS_PARAM_SPEC_H_

#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "json/value.h"
#include "ops/op_base.h"

namespace dj::ops {

/// Declared type of one OP configuration parameter.
enum class ParamType { kBool, kInt, kDouble, kString, kList };

const char* ParamTypeName(ParamType type);

/// Whether a recipe-supplied value satisfies `type` (ints are accepted where
/// doubles are declared, not vice versa).
bool ValueMatchesType(const json::Value& value, ParamType type);

/// Declaration of one configuration parameter of an OP: key, type, default,
/// and (for numbers) the valid range. This is the metadata the recipe linter
/// checks params against; OPs themselves keep reading config via Op::Param.
struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kDouble;
  /// Effective default; null when the OP computes the default itself
  /// (e.g. built-in lexicons) — the linter then skips default-based checks.
  json::Value def;
  /// Valid numeric range (inclusive); ignored for non-numeric types.
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
  std::string doc;

  bool has_range() const {
    return min_value != -std::numeric_limits<double>::infinity() ||
           max_value != std::numeric_limits<double>::infinity();
  }
};

/// The declared configuration surface of one OP. Built with the fluent
/// helpers below and registered next to the OP's factory, so unknown or
/// ill-typed recipe params can be diagnosed before a run:
///
///   OpSchema("text_length_filter", OpKind::kFilter)
///       .Double("min", 10, 0, kInf, "minimum text length in codepoints")
///       .Double("max", kInf, 0, kInf, "maximum text length in codepoints");
class OpSchema {
 public:
  OpSchema(std::string op_name, OpKind kind);

  const std::string& op_name() const { return op_name_; }
  OpKind kind() const { return kind_; }
  const std::vector<ParamSpec>& params() const { return params_; }

  const ParamSpec* Find(std::string_view key) const;
  std::vector<std::string> Keys() const;

  /// Fluent declaration helpers (return *this for chaining).
  OpSchema& Bool(std::string key, bool def, std::string doc = "");
  OpSchema& Int(std::string key, int64_t def, double min_value,
                double max_value, std::string doc = "");
  OpSchema& Double(std::string key, double def, double min_value,
                   double max_value, std::string doc = "");
  OpSchema& Str(std::string key, std::string def, std::string doc = "");
  /// List param with no declared default (OP fills one in).
  OpSchema& List(std::string key, std::string doc = "");
  /// String param with no declared default.
  OpSchema& StrNoDefault(std::string key, std::string doc = "");

  /// {"name": ..., "kind": ..., "params": [{key,type,default,min,max,doc}]}
  json::Value ToJson() const;

 private:
  OpSchema& Add(ParamSpec spec);

  std::string op_name_;
  OpKind kind_;
  std::vector<ParamSpec> params_;
};

/// Shorthand for open-ended numeric ranges in schema declarations.
inline constexpr double kParamInf = std::numeric_limits<double>::infinity();

}  // namespace dj::ops

#endif  // DJ_OPS_PARAM_SPEC_H_
