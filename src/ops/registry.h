#ifndef DJ_OPS_REGISTRY_H_
#define DJ_OPS_REGISTRY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "json/value.h"
#include "ops/op_base.h"
#include "ops/op_effects.h"
#include "ops/param_spec.h"

namespace dj::ops {

/// Factory registry mapping OP names to constructors. Built-in OPs are
/// registered explicitly by RegisterBuiltinOps (no static-initializer magic,
/// which is fragile with static libraries); users register their own OPs the
/// same way — the paper's "Advanced Extension" path.
class OpRegistry {
 public:
  using Factory =
      std::function<Result<std::unique_ptr<Op>>(const json::Value& config)>;

  /// Process-wide registry with all built-in OPs registered.
  static OpRegistry& Global();

  /// Registers `factory` under `name`. Re-registering a name replaces the
  /// factory (useful for tests); a warning is logged.
  void Register(std::string name, Factory factory);

  /// Attaches a declared parameter schema to the already-registered OP
  /// `schema.op_name()`. Schemas power static recipe linting (lint::
  /// RecipeLinter); OPs without one are skipped by param checks.
  void RegisterSchema(OpSchema schema);

  /// Attaches a declared effect signature to the already-registered OP
  /// `effects.op_name()`. Effects power the linter's dataflow pass and
  /// core::VerifyPlan; OPs without one make the plan verifier conservative
  /// (no reorder involving them is licensed).
  void RegisterEffects(OpEffects effects);

  /// Instantiates the OP `name` with `config` (a JSON object of params).
  Result<std::unique_ptr<Op>> Create(std::string_view name,
                                     const json::Value& config) const;

  bool Contains(std::string_view name) const;
  std::vector<std::string> Names() const;

  /// Declared schema of `name`, or nullptr when none was registered.
  const OpSchema* FindSchema(std::string_view name) const;
  /// All registered schemas, in registration order.
  std::vector<const OpSchema*> AllSchemas() const;

  /// Declared effect signature of `name`, or nullptr when none registered.
  const OpEffects* FindEffects(std::string_view name) const;
  /// All registered effect signatures, in registration order.
  std::vector<const OpEffects*> AllEffects() const;

 private:
  struct Entry {
    std::string name;
    Factory factory;
    std::optional<OpSchema> schema;
    std::optional<OpEffects> effects;
  };
  std::vector<Entry> entries_;
};

/// Registers every built-in OP into `registry`. Idempotent.
void RegisterBuiltinOps(OpRegistry* registry);

}  // namespace dj::ops

#endif  // DJ_OPS_REGISTRY_H_
