#include "ops/sample_context.h"

#include <cctype>

#include "common/string_util.h"
#include "text/sentence.h"
#include "text/tokenizer.h"

namespace dj::ops {

std::atomic<uint64_t> SampleContext::Counters::words{0};
std::atomic<uint64_t> SampleContext::Counters::lines{0};
std::atomic<uint64_t> SampleContext::Counters::sentences{0};
std::atomic<uint64_t> SampleContext::Counters::paragraphs{0};

void SampleContext::Counters::Reset() {
  words.store(0);
  lines.store(0);
  sentences.store(0);
  paragraphs.store(0);
}

uint64_t SampleContext::Counters::Total() {
  return words.load() + lines.load() + sentences.load() + paragraphs.load();
}

const std::vector<std::string>& SampleContext::Words() {
  if (!words_.has_value()) {
    words_ = text::TokenizeWords(text_);
    Counters::words.fetch_add(1, std::memory_order_relaxed);
  }
  return *words_;
}

const std::vector<std::string>& SampleContext::WordsLower() {
  if (!words_lower_.has_value()) {
    // Derive from Words() so the expensive tokenization is shared.
    std::vector<std::string> lower = Words();
    for (std::string& w : lower) {
      for (char& c : w) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    words_lower_ = std::move(lower);
  }
  return *words_lower_;
}

const std::vector<std::string>& SampleContext::Lines() {
  if (!lines_.has_value()) {
    lines_ = SplitLines(text_);
    Counters::lines.fetch_add(1, std::memory_order_relaxed);
  }
  return *lines_;
}

const std::vector<std::string>& SampleContext::Sentences() {
  if (!sentences_.has_value()) {
    sentences_ = text::SplitSentences(text_);
    Counters::sentences.fetch_add(1, std::memory_order_relaxed);
  }
  return *sentences_;
}

const std::vector<std::string>& SampleContext::Paragraphs() {
  if (!paragraphs_.has_value()) {
    paragraphs_ = text::SplitParagraphs(text_);
    Counters::paragraphs.fetch_add(1, std::memory_order_relaxed);
  }
  return *paragraphs_;
}

}  // namespace dj::ops
