#ifndef DJ_OPS_OP_EFFECTS_H_
#define DJ_OPS_OP_EFFECTS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ops/op_base.h"

namespace dj::ops {

/// How an OP changes the row set of the dataset it processes.
enum class Cardinality {
  kRowPreserving,  ///< every input row survives (mappers, formatters)
  kRowDropping,    ///< rows may be removed, each by a per-row predicate
  kRowMerging,     ///< cross-row decisions (deduplicators); never commutes
};

const char* CardinalityName(Cardinality cardinality);

/// Effect signature of one OP, fully resolved against a concrete instance's
/// effective configuration: every field is a dataset dot-path ("text",
/// "meta.suffix", "stats.num_words").
struct ResolvedEffects {
  std::string op_name;
  Cardinality cardinality = Cardinality::kRowPreserving;
  bool uses_context = false;
  std::vector<std::string> reads;
  std::vector<std::string> writes;
  /// Bare stats keys produced (also present in reads/writes as "stats.<k>").
  std::vector<std::string> stats;

  /// "reads {text}, writes {stats.num_words}" — for diagnostics.
  std::string DescribeSets() const;
};

/// Declared effect signature of a registered OP: which dataset fields it
/// reads and writes, which stats keys it produces, how it changes row
/// cardinality, and whether it consumes SampleContext. Registered alongside
/// OpSchema so the linter's dataflow pass and core::VerifyPlan can reason
/// about a plan without touching data.
///
/// Field entries starting with '@' are placeholders naming a string config
/// param ("@text_key", "@field"); Resolve() substitutes the instance's
/// effective value. A produced stat key K implies both a write and a
/// (self-)read of "stats.K" — the keep decision consumes it.
///
///   OpEffects("word_num_filter", Cardinality::kRowDropping)
///       .Reads("@text_key").ProducesStat("num_words").WithContext();
class OpEffects {
 public:
  OpEffects(std::string op_name, Cardinality cardinality);

  const std::string& op_name() const { return op_name_; }
  Cardinality cardinality() const { return cardinality_; }
  bool uses_context() const { return uses_context_; }
  const std::vector<std::string>& reads() const { return reads_; }
  const std::vector<std::string>& writes() const { return writes_; }
  const std::vector<std::string>& stats_produced() const { return stats_; }

  /// Fluent declaration helpers (return *this for chaining).
  OpEffects& Reads(std::string field);
  OpEffects& Writes(std::string field);
  OpEffects& ProducesStat(std::string key);
  OpEffects& WithContext();

  /// Substitutes '@param' placeholders with the instance's effective config
  /// values. Fails when a placeholder names a param the config does not
  /// carry as a non-empty string.
  Result<ResolvedEffects> Resolve(const Op& op) const;

 private:
  std::string op_name_;
  Cardinality cardinality_;
  bool uses_context_ = false;
  std::vector<std::string> reads_;
  std::vector<std::string> writes_;
  std::vector<std::string> stats_;
};

/// Whether two dataset dot-paths can refer to overlapping data: equal, or
/// one is a dot-segment prefix of the other ("text" aliases "text.output";
/// "stats.num_words" does not alias "stats.num_words_x").
bool FieldPathsAlias(std::string_view a, std::string_view b);

/// Why `a` (originally scheduled earlier) and `b` (originally later) may NOT
/// be swapped or co-scheduled: a read/write, write/read, or write/write
/// overlap on aliasing fields, or a row-merging participant. Returns "" when
/// the effects commute. Row-dropping alone does not block a swap: a dropped
/// row's subsequent fields are unobservable, so two OPs with disjoint
/// field sets commute even when both drop rows.
std::string DescribeConflict(const ResolvedEffects& a,
                             const ResolvedEffects& b);

}  // namespace dj::ops

#endif  // DJ_OPS_OP_EFFECTS_H_
