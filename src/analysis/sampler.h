#ifndef DJ_ANALYSIS_SAMPLER_H_
#define DJ_ANALYSIS_SAMPLER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/dataset.h"

namespace dj::analysis {

/// The enhanced LLM-data sampler of paper Sec. 6.2: uniform random
/// sampling, top-k by a stat, and stratified sampling over metadata /
/// statistics fields with heterogeneous criteria (document length, token
/// count, boolean predicates, linguistic diversity).
class Sampler {
 public:
  explicit Sampler(uint64_t seed = 1234) : rng_(seed) {}

  /// Uniform sample without replacement of `n` rows (all rows if n >= size).
  data::Dataset Random(const data::Dataset& dataset, size_t n);

  /// Rows with the largest value at `stat_path` (e.g. "stats.quality_score").
  data::Dataset TopKByField(const data::Dataset& dataset,
                            std::string_view field_path, size_t k,
                            bool descending = true);

  /// Stratified sampling: rows are bucketed by the string value at
  /// `strata_path` (e.g. "meta.lang"); `n` rows total are drawn with each
  /// stratum represented proportionally (at least one row from each
  /// non-empty stratum when n >= #strata).
  data::Dataset Stratified(const data::Dataset& dataset,
                           std::string_view strata_path, size_t n);

  /// Predicate-weighted sample: keeps rows where `pred` holds, then random
  /// samples n of them.
  data::Dataset Where(const data::Dataset& dataset,
                      const std::function<bool(const data::Dataset&, size_t)>&
                          pred,
                      size_t n);

  /// Diversity-maximizing sample: greedily picks rows whose root-verb /
  /// object pair (over `text_key`) is least represented so far — the
  /// "linguistic diversity formulated via verb-noun pair occurrences"
  /// criterion. Deterministic given the seed.
  data::Dataset DiversityAware(const data::Dataset& dataset,
                               std::string_view text_key, size_t n);

 private:
  Rng rng_;
};

}  // namespace dj::analysis

#endif  // DJ_ANALYSIS_SAMPLER_H_
