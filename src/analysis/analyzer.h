#ifndef DJ_ANALYSIS_ANALYZER_H_
#define DJ_ANALYSIS_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/histogram.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "ops/op_base.h"

namespace dj::analysis {

/// Per-dimension analysis result.
struct DimensionReport {
  std::string stat_key;
  SummaryStats summary;
  Histogram histogram;
};

/// Whole-dataset data probe (paper Sec. 5.2 / Fig. 5 step 1).
struct DataProbe {
  size_t num_samples = 0;
  std::vector<DimensionReport> dimensions;
  /// Top root verbs with their top direct objects (verb-noun diversity of
  /// Fig. 5): pairs of (verb, count) with nested (object, count).
  struct VerbNouns {
    std::string verb;
    size_t count = 0;
    std::vector<std::pair<std::string, size_t>> objects;
  };
  std::vector<VerbNouns> verb_noun_diversity;

  /// Full human-readable report with summaries, histograms and box plots.
  std::string ToString() const;
  /// CSV export of the per-dimension summary (one row per stat).
  std::string SummaryCsv() const;
  /// Structured JSON export (summaries + histogram bins + verb-noun
  /// diversity) for downstream visualization tooling.
  json::Value ToJson() const;
};

/// The Analyzer tool: runs the stats computation of a standard set of
/// filters (13 dimensions by default — the paper's "summary of per-sample
/// statistics covers 13 dimensions") over the dataset WITHOUT filtering
/// anything, then aggregates summaries and histograms per dimension. This
/// reuse of Filter::ComputeStats on the full dataset is exactly what the
/// decoupled stats/process design enables.
class Analyzer {
 public:
  struct Options {
    int num_workers = 1;
    size_t histogram_bins = 10;
    /// Number of verbs / objects in the diversity analysis.
    size_t top_verbs = 20;
    size_t top_objects = 4;
    /// Which field to analyze.
    std::string text_key = "text";
  };

  Analyzer();
  explicit Analyzer(Options options);

  /// Uses the default 13-dimension filter set.
  Result<DataProbe> Analyze(data::Dataset* dataset) const;

  /// Analyzes with a caller-provided filter set (stats are computed, nothing
  /// is dropped).
  Result<DataProbe> AnalyzeWith(
      data::Dataset* dataset,
      const std::vector<std::unique_ptr<ops::Filter>>& filters) const;

  /// The default 13 analysis dimensions.
  static std::vector<std::unique_ptr<ops::Filter>> DefaultFilters(
      const std::string& text_key);

 private:
  Options options_;
};

}  // namespace dj::analysis

#endif  // DJ_ANALYSIS_ANALYZER_H_
