#include "analysis/sampler.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "text/lexicons.h"
#include "text/tokenizer.h"

namespace dj::analysis {
namespace {

std::vector<size_t> AllIndices(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

}  // namespace

data::Dataset Sampler::Random(const data::Dataset& dataset, size_t n) {
  std::vector<size_t> indices = AllIndices(dataset.NumRows());
  if (n >= indices.size()) return dataset;
  rng_.Shuffle(&indices);
  indices.resize(n);
  std::sort(indices.begin(), indices.end());  // keep original order
  return dataset.Select(indices);
}

data::Dataset Sampler::TopKByField(const data::Dataset& dataset,
                                   std::string_view field_path, size_t k,
                                   bool descending) {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(dataset.NumRows());
  for (size_t i = 0; i < dataset.NumRows(); ++i) {
    scored.emplace_back(dataset.GetNumberAt(i, field_path, 0.0), i);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [descending](const auto& a, const auto& b) {
                     return descending ? a.first > b.first
                                       : a.first < b.first;
                   });
  if (scored.size() > k) scored.resize(k);
  std::vector<size_t> indices;
  indices.reserve(scored.size());
  for (const auto& [score, idx] : scored) indices.push_back(idx);
  std::sort(indices.begin(), indices.end());
  return dataset.Select(indices);
}

data::Dataset Sampler::Stratified(const data::Dataset& dataset,
                                  std::string_view strata_path, size_t n) {
  std::map<std::string, std::vector<size_t>> strata;
  for (size_t i = 0; i < dataset.NumRows(); ++i) {
    const json::Value* v = dataset.GetPath(i, strata_path);
    std::string key;
    if (v == nullptr || v->is_null()) {
      key = "<missing>";
    } else if (v->is_string()) {
      key = v->as_string();
    } else if (v->is_number()) {
      key = std::to_string(v->as_double());
    } else if (v->is_bool()) {
      key = v->as_bool() ? "true" : "false";
    } else {
      key = "<complex>";
    }
    strata[key].push_back(i);
  }
  if (n >= dataset.NumRows()) return dataset;
  // Proportional allocation with at least one per stratum where possible.
  std::vector<size_t> chosen;
  size_t total = dataset.NumRows();
  std::vector<std::pair<std::string, size_t>> want;  // stratum -> quota
  size_t allocated = 0;
  for (const auto& [key, members] : strata) {
    size_t quota = std::max<size_t>(
        strata.size() <= n ? 1 : 0,
        members.size() * n / std::max<size_t>(total, 1));
    quota = std::min(quota, members.size());
    want.emplace_back(key, quota);
    allocated += quota;
  }
  // Distribute any remainder to the largest strata.
  std::sort(want.begin(), want.end(),
            [&](const auto& a, const auto& b) {
              return strata[a.first].size() > strata[b.first].size();
            });
  size_t wi = 0;
  while (allocated < n && !want.empty()) {
    auto& [key, quota] = want[wi % want.size()];
    if (quota < strata[key].size()) {
      ++quota;
      ++allocated;
    }
    ++wi;
    if (wi > want.size() * (n + 2)) break;  // all strata exhausted
  }
  for (auto& [key, quota] : want) {
    std::vector<size_t>& members = strata[key];
    rng_.Shuffle(&members);
    for (size_t i = 0; i < quota && i < members.size(); ++i) {
      chosen.push_back(members[i]);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  if (chosen.size() > n) chosen.resize(n);
  return dataset.Select(chosen);
}

data::Dataset Sampler::Where(
    const data::Dataset& dataset,
    const std::function<bool(const data::Dataset&, size_t)>& pred, size_t n) {
  std::vector<size_t> matching;
  for (size_t i = 0; i < dataset.NumRows(); ++i) {
    if (pred(dataset, i)) matching.push_back(i);
  }
  if (matching.size() > n) {
    rng_.Shuffle(&matching);
    matching.resize(n);
    std::sort(matching.begin(), matching.end());
  }
  return dataset.Select(matching);
}

data::Dataset Sampler::DiversityAware(const data::Dataset& dataset,
                                      std::string_view text_key, size_t n) {
  const text::Lexicon& verbs = text::Lexicon::CommonVerbs();
  const text::Lexicon& stopwords = text::Lexicon::EnglishStopwords();
  // Extract each row's (verb, object) signature.
  std::vector<std::string> signature(dataset.NumRows());
  for (size_t i = 0; i < dataset.NumRows(); ++i) {
    std::vector<std::string> words =
        text::TokenizeWordsLower(dataset.GetTextAt(i, text_key));
    for (size_t w = 0; w < words.size(); ++w) {
      if (!verbs.Contains(words[w])) continue;
      signature[i] = words[w];
      for (size_t o = w + 1; o < words.size() && o < w + 6; ++o) {
        if (!stopwords.Contains(words[o]) && !verbs.Contains(words[o])) {
          signature[i] += ":" + words[o];
          break;
        }
      }
      break;
    }
    if (signature[i].empty()) signature[i] = "<none>";
  }
  if (n >= dataset.NumRows()) return dataset;
  // Greedy round-robin across signatures, shuffled within each group.
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < signature.size(); ++i) {
    groups[signature[i]].push_back(i);
  }
  for (auto& [key, members] : groups) rng_.Shuffle(&members);
  std::vector<size_t> chosen;
  size_t round = 0;
  while (chosen.size() < n) {
    bool any = false;
    for (auto& [key, members] : groups) {
      if (round < members.size() && chosen.size() < n) {
        chosen.push_back(members[round]);
        any = true;
      }
    }
    if (!any) break;
    ++round;
  }
  std::sort(chosen.begin(), chosen.end());
  return dataset.Select(chosen);
}

}  // namespace dj::analysis
