#ifndef DJ_ANALYSIS_HISTOGRAM_H_
#define DJ_ANALYSIS_HISTOGRAM_H_

#include <string>
#include <vector>

namespace dj::analysis {

/// Summary statistics of one numeric dimension (paper Sec. 5.2: counts,
/// means, standard deviations, min/max, quantile points).
struct SummaryStats {
  size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double max = 0;
};

SummaryStats Summarize(std::vector<double> values);

/// Fixed-width histogram.
struct Histogram {
  double lo = 0;
  double hi = 0;
  std::vector<size_t> bins;
};

Histogram BuildHistogram(const std::vector<double>& values, size_t num_bins);

/// ASCII rendering (bars of '#') with bin ranges; the textual stand-in for
/// the paper's plotted histograms.
std::string RenderHistogram(const Histogram& hist, size_t width = 50);

/// ASCII box plot on one line: min [p25 | median | p75] max.
std::string RenderBoxPlot(const SummaryStats& stats, size_t width = 60);

}  // namespace dj::analysis

#endif  // DJ_ANALYSIS_HISTOGRAM_H_
