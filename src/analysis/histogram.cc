#include "analysis/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dj::analysis {

SummaryStats Summarize(std::vector<double> values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  auto quantile = [&](double q) {
    double idx = q * static_cast<double>(values.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return values[lo] * (1 - frac) + values[hi] * frac;
  };
  s.min = values.front();
  s.p25 = quantile(0.25);
  s.median = quantile(0.5);
  s.p75 = quantile(0.75);
  s.max = values.back();
  return s;
}

Histogram BuildHistogram(const std::vector<double>& values, size_t num_bins) {
  Histogram h;
  if (values.empty() || num_bins == 0) return h;
  h.lo = *std::min_element(values.begin(), values.end());
  h.hi = *std::max_element(values.begin(), values.end());
  h.bins.assign(num_bins, 0);
  double span = h.hi - h.lo;
  if (span <= 0) {
    h.bins[0] = values.size();
    return h;
  }
  for (double v : values) {
    size_t bin = static_cast<size_t>((v - h.lo) / span *
                                     static_cast<double>(num_bins));
    if (bin >= num_bins) bin = num_bins - 1;
    ++h.bins[bin];
  }
  return h;
}

std::string RenderHistogram(const Histogram& hist, size_t width) {
  if (hist.bins.empty()) return "(empty)\n";
  size_t max_count = 0;
  for (size_t c : hist.bins) max_count = std::max(max_count, c);
  if (max_count == 0) max_count = 1;
  std::string out;
  double bin_width =
      (hist.hi - hist.lo) / static_cast<double>(hist.bins.size());
  char buf[64];
  for (size_t i = 0; i < hist.bins.size(); ++i) {
    double lo = hist.lo + bin_width * static_cast<double>(i);
    double hi = lo + bin_width;
    std::snprintf(buf, sizeof(buf), "[%10.2f, %10.2f) %7zu |", lo, hi,
                  hist.bins[i]);
    out += buf;
    size_t bar = hist.bins[i] * width / max_count;
    out.append(bar, '#');
    out.push_back('\n');
  }
  return out;
}

std::string RenderBoxPlot(const SummaryStats& stats, size_t width) {
  if (stats.count == 0 || width < 10) return "(empty)\n";
  double span = stats.max - stats.min;
  auto pos = [&](double v) -> size_t {
    if (span <= 0) return 0;
    double p = (v - stats.min) / span * static_cast<double>(width - 1);
    return static_cast<size_t>(std::clamp(p, 0.0, double(width - 1)));
  };
  std::string line(width, '-');
  line[pos(stats.min)] = '|';
  line[pos(stats.max)] = '|';
  size_t a = pos(stats.p25), b = pos(stats.p75);
  for (size_t i = a; i <= b && i < width; ++i) line[i] = '=';
  line[pos(stats.median)] = 'M';
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  min=%.2f p25=%.2f med=%.2f p75=%.2f max=%.2f",
                stats.min, stats.p25, stats.median, stats.p75, stats.max);
  return line + buf + "\n";
}

}  // namespace dj::analysis
