#include "analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/string_util.h"
#include "ops/filters/lexicon_filters.h"
#include "ops/filters/model_filters.h"
#include "ops/filters/stats_filters.h"
#include "ops/stats_keys.h"
#include "text/lexicons.h"
#include "text/tokenizer.h"

namespace dj::analysis {
namespace {

json::Value FilterConfig(const std::string& text_key) {
  json::Object config;
  config.Set("text_key", json::Value(text_key));
  return json::Value(std::move(config));
}

}  // namespace

std::string DataProbe::ToString() const {
  std::string out =
      "Data probe over " + std::to_string(num_samples) + " samples\n";
  for (const DimensionReport& dim : dimensions) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n== %-24s count=%zu mean=%.3f std=%.3f ==\n",
                  dim.stat_key.c_str(), dim.summary.count, dim.summary.mean,
                  dim.summary.stddev);
    out += buf;
    out += RenderBoxPlot(dim.summary);
    out += RenderHistogram(dim.histogram);
  }
  if (!verb_noun_diversity.empty()) {
    out += "\n== verb-noun diversity (top root verbs / direct objects) ==\n";
    for (const auto& vn : verb_noun_diversity) {
      out += "  " + vn.verb + " (" + std::to_string(vn.count) + "): ";
      for (size_t i = 0; i < vn.objects.size(); ++i) {
        if (i > 0) out += ", ";
        out += vn.objects[i].first + " x" +
               std::to_string(vn.objects[i].second);
      }
      out += "\n";
    }
  }
  return out;
}

std::string DataProbe::SummaryCsv() const {
  std::string out = "stat,count,mean,stddev,min,p25,median,p75,max\n";
  for (const DimensionReport& dim : dimensions) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s,%zu,%g,%g,%g,%g,%g,%g,%g\n",
                  dim.stat_key.c_str(), dim.summary.count, dim.summary.mean,
                  dim.summary.stddev, dim.summary.min, dim.summary.p25,
                  dim.summary.median, dim.summary.p75, dim.summary.max);
    out += buf;
  }
  return out;
}

json::Value DataProbe::ToJson() const {
  json::Object root;
  root.Set("num_samples", json::Value(static_cast<int64_t>(num_samples)));
  json::Array dims;
  for (const DimensionReport& dim : dimensions) {
    json::Object d;
    d.Set("stat", json::Value(dim.stat_key));
    json::Object summary;
    summary.Set("count", json::Value(static_cast<int64_t>(dim.summary.count)));
    summary.Set("mean", json::Value(dim.summary.mean));
    summary.Set("stddev", json::Value(dim.summary.stddev));
    summary.Set("min", json::Value(dim.summary.min));
    summary.Set("p25", json::Value(dim.summary.p25));
    summary.Set("median", json::Value(dim.summary.median));
    summary.Set("p75", json::Value(dim.summary.p75));
    summary.Set("max", json::Value(dim.summary.max));
    d.Set("summary", json::Value(std::move(summary)));
    json::Object histogram;
    histogram.Set("lo", json::Value(dim.histogram.lo));
    histogram.Set("hi", json::Value(dim.histogram.hi));
    json::Array bins;
    for (size_t count : dim.histogram.bins) {
      bins.emplace_back(static_cast<int64_t>(count));
    }
    histogram.Set("bins", json::Value(std::move(bins)));
    d.Set("histogram", json::Value(std::move(histogram)));
    dims.emplace_back(std::move(d));
  }
  root.Set("dimensions", json::Value(std::move(dims)));
  json::Array verbs;
  for (const VerbNouns& vn : verb_noun_diversity) {
    json::Object v;
    v.Set("verb", json::Value(vn.verb));
    v.Set("count", json::Value(static_cast<int64_t>(vn.count)));
    json::Array objects;
    for (const auto& [object, count] : vn.objects) {
      json::Object o;
      o.Set("object", json::Value(object));
      o.Set("count", json::Value(static_cast<int64_t>(count)));
      objects.emplace_back(std::move(o));
    }
    v.Set("objects", json::Value(std::move(objects)));
    verbs.emplace_back(std::move(v));
  }
  root.Set("verb_noun_diversity", json::Value(std::move(verbs)));
  return json::Value(std::move(root));
}

Analyzer::Analyzer() : Analyzer(Options()) {}
Analyzer::Analyzer(Options options) : options_(std::move(options)) {}

std::vector<std::unique_ptr<ops::Filter>> Analyzer::DefaultFilters(
    const std::string& text_key) {
  json::Value config = FilterConfig(text_key);
  std::vector<std::unique_ptr<ops::Filter>> filters;
  // The 13 default dimensions of the Analyzer.
  filters.push_back(std::make_unique<ops::TextLengthFilter>(config));
  filters.push_back(std::make_unique<ops::WordNumFilter>(config));
  filters.push_back(std::make_unique<ops::TokenNumFilter>(config));
  filters.push_back(std::make_unique<ops::SentenceNumFilter>(config));
  filters.push_back(std::make_unique<ops::ParagraphNumFilter>(config));
  filters.push_back(std::make_unique<ops::AverageLineLengthFilter>(config));
  filters.push_back(std::make_unique<ops::MaximumLineLengthFilter>(config));
  filters.push_back(std::make_unique<ops::AlphanumericFilter>(config));
  filters.push_back(std::make_unique<ops::SpecialCharactersFilter>(config));
  filters.push_back(std::make_unique<ops::CharacterRepetitionFilter>(config));
  filters.push_back(std::make_unique<ops::WordRepetitionFilter>(config));
  filters.push_back(std::make_unique<ops::StopwordsFilter>(config));
  filters.push_back(std::make_unique<ops::FlaggedWordsFilter>(config));
  return filters;
}

Result<DataProbe> Analyzer::Analyze(data::Dataset* dataset) const {
  return AnalyzeWith(dataset, DefaultFilters(options_.text_key));
}

Result<DataProbe> Analyzer::AnalyzeWith(
    data::Dataset* dataset,
    const std::vector<std::unique_ptr<ops::Filter>>& filters) const {
  dataset->EnsureColumn(data::kStatsField);
  std::optional<ThreadPool> pool;
  if (options_.num_workers > 1) {
    pool.emplace(static_cast<size_t>(options_.num_workers));
  }
  // Single pass: one shared context per sample across all dimensions.
  Status status = dataset->Map(
      [&filters, this](data::RowRef row) -> Status {
        ops::SampleContext ctx(row.GetText(options_.text_key));
        for (const auto& filter : filters) {
          DJ_RETURN_IF_ERROR(filter->ComputeStats(row, &ctx));
        }
        return Status::Ok();
      },
      pool ? &*pool : nullptr);
  DJ_RETURN_IF_ERROR(status);

  DataProbe probe;
  probe.num_samples = dataset->NumRows();
  for (const auto& filter : filters) {
    for (const std::string& key : filter->StatsKeys()) {
      std::vector<double> values;
      values.reserve(dataset->NumRows());
      std::string path = std::string(data::kStatsField) + "." + key;
      for (size_t i = 0; i < dataset->NumRows(); ++i) {
        const json::Value* v = dataset->Row(i).Get(path);
        if (v != nullptr && v->is_number()) values.push_back(v->as_double());
      }
      if (values.empty()) continue;  // non-numeric stats (e.g. lang)
      DimensionReport dim;
      dim.stat_key = key;
      dim.summary = Summarize(values);
      dim.histogram = BuildHistogram(values, options_.histogram_bins);
      probe.dimensions.push_back(std::move(dim));
    }
  }

  // Verb-noun diversity: first common verb in each sample is the "root
  // verb"; the nearest following non-stopword is its "direct object" —
  // a parser-free approximation of the Fig. 5 pie chart.
  const text::Lexicon& verbs = text::Lexicon::CommonVerbs();
  const text::Lexicon& stopwords = text::Lexicon::EnglishStopwords();
  std::map<std::string, std::map<std::string, size_t>> verb_objects;
  std::map<std::string, size_t> verb_counts;
  for (size_t i = 0; i < dataset->NumRows(); ++i) {
    std::vector<std::string> words =
        text::TokenizeWordsLower(dataset->Row(i).GetText(options_.text_key));
    for (size_t w = 0; w < words.size(); ++w) {
      if (!verbs.Contains(words[w])) continue;
      std::string object;
      for (size_t o = w + 1; o < words.size() && o < w + 6; ++o) {
        if (!stopwords.Contains(words[o]) && !verbs.Contains(words[o])) {
          object = words[o];
          break;
        }
      }
      ++verb_counts[words[w]];
      if (!object.empty()) ++verb_objects[words[w]][object];
      break;  // one root verb per sample
    }
  }
  std::vector<std::pair<std::string, size_t>> ranked(verb_counts.begin(),
                                                     verb_counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  for (size_t v = 0; v < ranked.size() && v < options_.top_verbs; ++v) {
    DataProbe::VerbNouns vn;
    vn.verb = ranked[v].first;
    vn.count = ranked[v].second;
    std::vector<std::pair<std::string, size_t>> objs(
        verb_objects[vn.verb].begin(), verb_objects[vn.verb].end());
    std::sort(objs.begin(), objs.end(), [](const auto& a, const auto& b) {
      return a.second > b.second ||
             (a.second == b.second && a.first < b.first);
    });
    if (objs.size() > options_.top_objects) {
      objs.resize(options_.top_objects);
    }
    vn.objects = std::move(objs);
    probe.verb_noun_diversity.push_back(std::move(vn));
  }
  return probe;
}

}  // namespace dj::analysis
