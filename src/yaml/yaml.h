#ifndef DJ_YAML_YAML_H_
#define DJ_YAML_YAML_H_

#include <string_view>

#include "common/status.h"
#include "json/value.h"

namespace dj::yaml {

/// Parses a pragmatic YAML subset into a JSON value. Supported:
///   - nested block mappings (`key: value`, indentation-scoped)
///   - block sequences (`- item`, including `- key: value` inline mappings)
///   - flow scalars: quoted strings, ints, doubles, true/false/null
///   - inline flow collections (`[a, b]`, `{k: v}`) — delegated to the JSON
///     parser with light rewriting
///   - comments (`# ...`) and blank lines
///
/// Not supported (rejected with Corruption): anchors/aliases, multi-document
/// streams, block scalars (| and >), tabs for indentation. This covers every
/// recipe shape Data-Juicer uses (lists of single-key OP maps with scalar
/// parameters).
Result<json::Value> Parse(std::string_view text);

}  // namespace dj::yaml

#endif  // DJ_YAML_YAML_H_
