#include "yaml/yaml.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "json/parser.h"

namespace dj::yaml {
namespace {

using json::Array;
using json::Object;
using json::Value;

struct Line {
  int indent = 0;
  std::string content;
};

/// Removes a trailing comment that is not inside quotes. A '#' only starts a
/// comment at line start or after whitespace (YAML rule).
std::string StripComment(std::string_view line) {
  bool in_single = false;
  bool in_double = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_double) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_double = false;
      }
    } else if (in_single) {
      if (c == '\'') in_single = false;
    } else if (c == '"') {
      in_double = true;
    } else if (c == '\'') {
      in_single = true;
    } else if (c == '#' &&
               (i == 0 || line[i - 1] == ' ' || line[i - 1] == '\t')) {
      return std::string(line.substr(0, i));
    }
  }
  return std::string(line);
}

/// Finds the first ':' outside quotes that is followed by a space or ends the
/// line (i.e., a mapping separator). Returns npos if none.
size_t FindMappingColon(std::string_view s) {
  bool in_single = false;
  bool in_double = false;
  int flow_depth = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_double) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_double = false;
      }
    } else if (in_single) {
      if (c == '\'') in_single = false;
    } else if (c == '"') {
      in_double = true;
    } else if (c == '\'') {
      in_single = true;
    } else if (c == '[' || c == '{') {
      ++flow_depth;
    } else if (c == ']' || c == '}') {
      --flow_depth;
    } else if (c == ':' && flow_depth == 0 &&
               (i + 1 == s.size() || s[i + 1] == ' ')) {
      return i;
    }
  }
  return std::string_view::npos;
}

class YamlParser {
 public:
  explicit YamlParser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    DJ_RETURN_IF_ERROR(Tokenize());
    if (lines_.empty()) return Value(Object());
    size_t i = 0;
    Value root;
    DJ_RETURN_IF_ERROR(ParseBlock(&i, 0, &root));
    if (i != lines_.size()) {
      return Status::Corruption("yaml: unexpected dedent/content at line " +
                                std::to_string(line_numbers_[i]));
    }
    return root;
  }

 private:
  Status Tokenize() {
    int lineno = 0;
    for (const std::string& raw : SplitLines(text_)) {
      ++lineno;
      std::string no_comment = StripComment(raw);
      // Measure indentation in spaces; tabs are rejected (as in YAML).
      int indent = 0;
      size_t p = 0;
      while (p < no_comment.size() && no_comment[p] == ' ') {
        ++indent;
        ++p;
      }
      if (p < no_comment.size() && no_comment[p] == '\t') {
        return Status::Corruption("yaml: tab indentation at line " +
                                  std::to_string(lineno));
      }
      std::string_view body = StripAsciiWhitespace(no_comment);
      if (body.empty()) continue;
      if (body == "---") continue;  // single-document marker tolerated
      if (StartsWith(body, "&") || StartsWith(body, "*") ||
          EndsWith(body, "|") || EndsWith(body, ">")) {
        return Status::Corruption(
            "yaml: anchors/aliases/block scalars unsupported (line " +
            std::to_string(lineno) + ")");
      }
      lines_.push_back({indent, std::string(body)});
      line_numbers_.push_back(lineno);
    }
    return Status::Ok();
  }

  Status ParseBlock(size_t* i, int min_indent, Value* out) {
    if (*i >= lines_.size() || lines_[*i].indent < min_indent) {
      *out = Value(nullptr);
      return Status::Ok();
    }
    if (lines_[*i].content[0] == '-' &&
        (lines_[*i].content.size() == 1 || lines_[*i].content[1] == ' ')) {
      return ParseSequence(i, out);
    }
    return ParseMapping(i, out);
  }

  Status ParseSequence(size_t* i, Value* out) {
    const int base = lines_[*i].indent;
    Array arr;
    while (*i < lines_.size() && lines_[*i].indent == base &&
           lines_[*i].content[0] == '-' &&
           (lines_[*i].content.size() == 1 || lines_[*i].content[1] == ' ')) {
      std::string rest(StripAsciiWhitespace(
          std::string_view(lines_[*i].content).substr(1)));
      Value item;
      if (rest.empty()) {
        ++*i;
        DJ_RETURN_IF_ERROR(ParseBlock(i, base + 1, &item));
      } else {
        size_t colon = FindMappingColon(rest);
        bool looks_like_mapping =
            colon != std::string_view::npos && rest[0] != '[' &&
            rest[0] != '{' && rest[0] != '"' && rest[0] != '\'';
        if (looks_like_mapping) {
          // Re-anchor the inline content two columns right of the dash and
          // parse it as the first entry of a nested mapping.
          lines_[*i].indent = base + 2;
          lines_[*i].content = rest;
          DJ_RETURN_IF_ERROR(ParseMapping(i, &item));
        } else {
          DJ_RETURN_IF_ERROR(ParseScalar(rest, *i, &item));
          ++*i;
        }
      }
      arr.push_back(std::move(item));
    }
    *out = Value(std::move(arr));
    return Status::Ok();
  }

  Status ParseMapping(size_t* i, Value* out) {
    const int base = lines_[*i].indent;
    Object obj;
    while (*i < lines_.size() && lines_[*i].indent == base) {
      const std::string& content = lines_[*i].content;
      if (content[0] == '-' && (content.size() == 1 || content[1] == ' ')) {
        break;  // sequence at same indent ends the mapping
      }
      size_t colon = FindMappingColon(content);
      if (colon == std::string_view::npos) {
        return Status::Corruption("yaml: expected 'key: value' at line " +
                                  std::to_string(line_numbers_[*i]));
      }
      std::string key(
          StripAsciiWhitespace(std::string_view(content).substr(0, colon)));
      if (key.size() >= 2 &&
          ((key.front() == '"' && key.back() == '"') ||
           (key.front() == '\'' && key.back() == '\''))) {
        key = key.substr(1, key.size() - 2);
      }
      std::string rest(
          StripAsciiWhitespace(std::string_view(content).substr(colon + 1)));
      Value value;
      if (rest.empty()) {
        ++*i;
        if (*i < lines_.size() && lines_[*i].indent > base) {
          DJ_RETURN_IF_ERROR(ParseBlock(i, base + 1, &value));
        } else {
          value = Value(nullptr);
        }
      } else {
        DJ_RETURN_IF_ERROR(ParseScalar(rest, *i, &value));
        ++*i;
      }
      obj.Set(std::move(key), std::move(value));
    }
    *out = Value(std::move(obj));
    return Status::Ok();
  }

  Status ParseScalar(std::string_view token, size_t line_index, Value* out) {
    token = StripAsciiWhitespace(token);
    if (token.empty()) {
      *out = Value(nullptr);
      return Status::Ok();
    }
    char first = token[0];
    if (first == '&' || first == '*' || token == "|" || token == ">") {
      return Status::Corruption(
          "yaml: anchors/aliases/block scalars unsupported (line " +
          std::to_string(line_numbers_[line_index]) + ")");
    }
    if (first == '[' || first == '{') {
      return ParseFlow(token, line_index, out);
    }
    if (first == '"') {
      auto r = json::ParseStrict(token);
      if (!r.ok()) {
        return Status::Corruption("yaml: bad double-quoted scalar at line " +
                                  std::to_string(line_numbers_[line_index]));
      }
      *out = std::move(r).value();
      return Status::Ok();
    }
    if (first == '\'') {
      if (token.size() < 2 || token.back() != '\'') {
        return Status::Corruption("yaml: unterminated single quote at line " +
                                  std::to_string(line_numbers_[line_index]));
      }
      std::string inner(token.substr(1, token.size() - 2));
      *out = Value(ReplaceAll(inner, "''", "'"));
      return Status::Ok();
    }
    if (token == "true" || token == "True") {
      *out = Value(true);
      return Status::Ok();
    }
    if (token == "false" || token == "False") {
      *out = Value(false);
      return Status::Ok();
    }
    if (token == "null" || token == "~" || token == "Null") {
      *out = Value(nullptr);
      return Status::Ok();
    }
    int64_t i64 = 0;
    if (ParseInt64(token, &i64)) {
      *out = Value(i64);
      return Status::Ok();
    }
    double d = 0;
    if (ParseDouble(token, &d)) {
      *out = Value(d);
      return Status::Ok();
    }
    *out = Value(std::string(token));
    return Status::Ok();
  }

  /// Parses inline flow collections ("[a, 1]", "{k: v}") where elements may
  /// be bare words, by splitting at top level and recursing through
  /// ParseScalar.
  Status ParseFlow(std::string_view s, size_t line_index, Value* out) {
    size_t pos = 0;
    DJ_RETURN_IF_ERROR(ParseFlowValue(s, &pos, line_index, out));
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
    if (pos != s.size()) {
      return Status::Corruption("yaml: trailing characters in flow value");
    }
    return Status::Ok();
  }

  Status ParseFlowValue(std::string_view s, size_t* pos, size_t line_index,
                        Value* out) {
    while (*pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[*pos]))) {
      ++*pos;
    }
    if (*pos >= s.size()) return Status::Corruption("yaml: empty flow value");
    char c = s[*pos];
    if (c == '[') {
      ++*pos;
      Array arr;
      SkipFlowSpace(s, pos);
      if (*pos < s.size() && s[*pos] == ']') {
        ++*pos;
        *out = Value(std::move(arr));
        return Status::Ok();
      }
      while (true) {
        Value v;
        DJ_RETURN_IF_ERROR(ParseFlowValue(s, pos, line_index, &v));
        arr.push_back(std::move(v));
        SkipFlowSpace(s, pos);
        if (*pos >= s.size()) return Status::Corruption("yaml: unterminated [");
        if (s[*pos] == ',') {
          ++*pos;
          continue;
        }
        if (s[*pos] == ']') {
          ++*pos;
          break;
        }
        return Status::Corruption("yaml: expected ',' or ']'");
      }
      *out = Value(std::move(arr));
      return Status::Ok();
    }
    if (c == '{') {
      ++*pos;
      Object obj;
      SkipFlowSpace(s, pos);
      if (*pos < s.size() && s[*pos] == '}') {
        ++*pos;
        *out = Value(std::move(obj));
        return Status::Ok();
      }
      while (true) {
        SkipFlowSpace(s, pos);
        size_t key_start = *pos;
        while (*pos < s.size() && s[*pos] != ':') ++*pos;
        if (*pos >= s.size()) {
          return Status::Corruption("yaml: expected ':' in flow mapping");
        }
        std::string key(StripAsciiWhitespace(
            s.substr(key_start, *pos - key_start)));
        if (key.size() >= 2 && ((key.front() == '"' && key.back() == '"') ||
                                (key.front() == '\'' && key.back() == '\''))) {
          key = key.substr(1, key.size() - 2);
        }
        ++*pos;  // ':'
        Value v;
        DJ_RETURN_IF_ERROR(ParseFlowValue(s, pos, line_index, &v));
        obj.Set(std::move(key), std::move(v));
        SkipFlowSpace(s, pos);
        if (*pos >= s.size()) return Status::Corruption("yaml: unterminated {");
        if (s[*pos] == ',') {
          ++*pos;
          continue;
        }
        if (s[*pos] == '}') {
          ++*pos;
          break;
        }
        return Status::Corruption("yaml: expected ',' or '}'");
      }
      *out = Value(std::move(obj));
      return Status::Ok();
    }
    // Scalar token: read to the next top-level delimiter, respecting quotes.
    size_t start = *pos;
    bool in_single = false, in_double = false;
    while (*pos < s.size()) {
      char ch = s[*pos];
      if (in_double) {
        if (ch == '\\') {
          ++*pos;
        } else if (ch == '"') {
          in_double = false;
        }
      } else if (in_single) {
        if (ch == '\'') in_single = false;
      } else if (ch == '"') {
        in_double = true;
      } else if (ch == '\'') {
        in_single = true;
      } else if (ch == ',' || ch == ']' || ch == '}') {
        break;
      }
      ++*pos;
    }
    return ParseScalar(s.substr(start, *pos - start), line_index, out);
  }

  static void SkipFlowSpace(std::string_view s, size_t* pos) {
    while (*pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[*pos]))) {
      ++*pos;
    }
  }

  std::string_view text_;
  std::vector<Line> lines_;
  std::vector<int> line_numbers_;
};

}  // namespace

Result<json::Value> Parse(std::string_view text) {
  return YamlParser(text).Run();
}

}  // namespace dj::yaml
