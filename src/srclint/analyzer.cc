#include "srclint/analyzer.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <filesystem>
#include <set>
#include <utility>

#include "common/file_util.h"
#include "srclint/source_scan.h"

namespace dj::srclint {
namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Sends a NameRef (or declare) into the right manifest set.
void AddName(Manifest* m, RefKind kind, std::string name) {
  switch (kind) {
    case RefKind::kFault:
      m->fault_points.push_back(std::move(name));
      break;
    case RefKind::kSched:
      m->sched_points.push_back(std::move(name));
      break;
    case RefKind::kSpan:
      m->spans.push_back(std::move(name));
      break;
    case RefKind::kInstant:
      m->instants.push_back(std::move(name));
      break;
    case RefKind::kCounter:
      m->counters.push_back(std::move(name));
      break;
    case RefKind::kGauge:
      m->gauges.push_back(std::move(name));
      break;
    case RefKind::kHistogram:
      m->histograms.push_back(std::move(name));
      break;
    case RefKind::kSeries:
      m->counter_series.push_back(std::move(name));
      break;
    case RefKind::kLock:
      m->lock_classes.push_back(std::move(name));
      break;
    case RefKind::kOpRegister:
      break;  // handled by the caller (coverage needs the site)
  }
}

const char* BannedHint(std::string_view check) {
  if (check == "raw-mutex") {
    return "use dj::Mutex / dj::MutexLock (common/mutex.h) so lock-order "
           "tracking and sched points see the lock";
  }
  if (check == "raw-output") {
    return "library code must log through DJ_LOG (common/logging.h)";
  }
  return "use a seeded dj:: RNG or an explicit clock parameter; wall-clock "
         "and global RNG break run-to-run determinism";
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

std::string Finding::ToString() const {
  std::string out = file.empty() ? std::string("(tree)") : file;
  if (line > 0) {
    out += ":";
    out += std::to_string(line);
  }
  out += ": ";
  out += SeverityName(severity);
  out += " [";
  out += check;
  out += "] ";
  out += message;
  if (!hint.empty()) {
    out += "\n    hint: ";
    out += hint;
  }
  return out;
}

json::Value Finding::ToJson() const {
  json::Object o;
  o.Set("severity", SeverityName(severity));
  o.Set("check", check);
  o.Set("file", file);
  o.Set("line", static_cast<int64_t>(line));
  o.Set("message", message);
  o.Set("hint", hint);
  return json::Value(std::move(o));
}

void Report::Add(Finding finding) {
  switch (finding.severity) {
    case Severity::kError:
      ++errors;
      break;
    case Severity::kWarning:
      ++warnings;
      break;
    case Severity::kNote:
      ++notes;
      break;
  }
  findings.push_back(std::move(finding));
}

bool Report::Clean(bool warnings_as_errors) const {
  return errors == 0 && (!warnings_as_errors || warnings == 0);
}

json::Value Report::ToJson() const {
  json::Object o;
  json::Array arr;
  arr.reserve(findings.size());
  for (const Finding& f : findings) arr.push_back(f.ToJson());
  o.Set("findings", json::Value(std::move(arr)));
  o.Set("errors", static_cast<int64_t>(errors));
  o.Set("warnings", static_cast<int64_t>(warnings));
  o.Set("notes", static_cast<int64_t>(notes));
  return json::Value(std::move(o));
}

const std::vector<std::pair<std::string, std::string>>&
DefaultFileAllowlist() {
  static const std::vector<std::pair<std::string, std::string>>* kList =
      new std::vector<std::pair<std::string, std::string>>{
          // The mutex wrapper is where std::mutex is supposed to live.
          {"raw-mutex", "src/common/mutex.h"},
          // The logging sink is the one legitimate stderr writer.
          {"raw-output", "src/common/logging.cc"},
      };
  return *kList;
}

Result<SourceTree> LoadSourceTree(const std::string& root) {
  namespace fs = std::filesystem;
  SourceTree tree;
  fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return Status::InvalidArgument("no src/ directory under " + root);
  }
  for (fs::recursive_directory_iterator it(src, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      return Status::Internal("walking " + src.string() + ": " + ec.message());
    }
    if (!it->is_regular_file()) continue;
    std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::string rel =
        fs::relative(it->path(), fs::path(root), ec).generic_string();
    if (ec) {
      return Status::Internal("relativizing " + it->path().string());
    }
    DJ_ASSIGN_OR_RETURN(std::string content,
                        ReadFileToString(it->path().string()));
    tree.files.push_back({std::move(rel), std::move(content)});
  }
  std::sort(tree.files.begin(), tree.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });

  auto load_optional = [&](const char* rel, bool* has, std::string* out) {
    fs::path p = fs::path(root) / rel;
    std::error_code exists_ec;
    if (!fs::exists(p, exists_ec)) return Status::Ok();
    Result<std::string> content = ReadFileToString(p.string());
    if (!content.ok()) return content.status();
    *has = true;
    *out = std::move(content).value();
    return Status::Ok();
  };
  DJ_RETURN_IF_ERROR(load_optional("srclint/manifest.json",
                                   &tree.has_manifest, &tree.manifest_text));
  DJ_RETURN_IF_ERROR(load_optional("docs/robustness.md", &tree.has_robustness,
                                   &tree.robustness_doc));
  DJ_RETURN_IF_ERROR(load_optional("docs/observability.md",
                                   &tree.has_observability,
                                   &tree.observability_doc));
  return tree;
}

std::string TodayString() {
  std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  char buf[16];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm_buf);
  return buf;
}

Report Analyze(const SourceTree& tree, const AnalyzeOptions& options) {
  const LayerPolicy& policy =
      options.policy != nullptr ? *options.policy : LayerPolicy::Default();
  const auto& file_allowlist = options.file_allowlist != nullptr
                                   ? *options.file_allowlist
                                   : DefaultFileAllowlist();
  Report report;
  Manifest m;

  std::set<std::string> schema_names;
  std::set<std::string> effects_names;
  struct OpReg {
    std::string file;
    int line = 0;
    std::string name;
    bool is_prefix = false;
  };
  std::vector<OpReg> op_regs;
  std::vector<LayerEdge> edges;
  std::set<std::pair<std::string, std::string>> edge_seen;
  std::set<std::string> undeclared_layers;

  for (const SourceFile& file : tree.files) {
    FileScan scan = ScanSource(file.path, file.content);
    bool in_ops_layer = file.path.rfind("src/ops/", 0) == 0;

    struct AllowState {
      const Allow* allow;
      bool used = false;
      bool expired = false;
    };
    std::vector<AllowState> allows;
    allows.reserve(scan.allows.size());
    for (const Allow& a : scan.allows) {
      AllowState st{&a};
      if (!a.expires.empty() && !options.today.empty() &&
          options.today > a.expires) {
        st.expired = true;
        report.Add({Severity::kWarning, "allow-expired", file.path, a.line,
                    "srclint-allow(" + a.check + ") expired on " + a.expires,
                    "the waived finding fires again; fix it or renew the "
                    "expiry date"});
      }
      allows.push_back(st);
    }
    // Line allows cover their own line and the next one, so both trailing
    // comments and comment-above placement work.
    auto line_allowed = [&allows](const std::string& check, int line) {
      for (AllowState& st : allows) {
        if (st.expired || st.allow->check != check) continue;
        if (st.allow->file_scope || st.allow->line == line ||
            st.allow->line + 1 == line) {
          st.used = true;
          return true;
        }
      }
      return false;
    };
    auto builtin_allowed = [&](const std::string& check) {
      for (const auto& [c, path] : file_allowlist) {
        if (c == check && path == file.path) return true;
      }
      return false;
    };

    for (const ParseIssue& issue : scan.issues) {
      report.Add({Severity::kError, "parse", file.path, issue.line,
                  issue.message, ""});
    }

    for (const BannedUse& b : scan.banned) {
      if (builtin_allowed(b.check) || line_allowed(b.check, b.line)) continue;
      report.Add({Severity::kError, b.check, file.path, b.line,
                  "banned API '" + b.token + "'", BannedHint(b.check)});
    }

    std::set<RefKind> declared_kinds;
    for (const Declare& d : scan.declares) {
      declared_kinds.insert(d.kind);
      if (d.kind == RefKind::kOpRegister) {
        if (in_ops_layer) {
          op_regs.push_back({file.path, d.line, d.name, d.is_prefix});
        }
        continue;
      }
      AddName(&m, d.kind, d.is_prefix ? d.name + "*" : d.name);
    }

    for (const NameRef& n : scan.names) {
      if (n.kind == RefKind::kOpRegister) {
        // Register() on registries outside src/ops (fault registry, lock
        // registry...) is not an OP registration.
        if (in_ops_layer) {
          op_regs.push_back({file.path, n.line, n.name, n.is_prefix});
        }
        continue;
      }
      AddName(&m, n.kind, n.is_prefix ? n.name + "*" : n.name);
    }

    for (const DynamicNameSite& d : scan.dynamic_names) {
      if (d.kind == RefKind::kOpRegister && !in_ops_layer) continue;
      if (declared_kinds.count(d.kind) != 0) continue;
      if (line_allowed("dynamic-name", d.line)) continue;
      report.Add(
          {Severity::kError, "dynamic-name", file.path, d.line,
           std::string("dynamically built ") + RefKindName(d.kind) +
               " name — the manifest cannot account for it",
           std::string("add '// srclint-declare(") + RefKindName(d.kind) +
               "): <name-or-prefix*>' naming what this site emits"});
    }

    for (const FnString& f : scan.fn_strings) {
      if (EndsWith(f.function, "Schemas")) {
        schema_names.insert(f.value);
      } else {
        effects_names.insert(f.value);
      }
    }

    std::string from = LayerOfPath(file.path);
    if (!from.empty()) {
      if (!policy.Knows(from) && undeclared_layers.insert(from).second) {
        report.Add({Severity::kError, "layering", file.path, 0,
                    "layer '" + from + "' is not declared in the layering "
                    "policy",
                    "add it to LayerPolicy::Default() and the DESIGN.md "
                    "table"});
      }
      for (const Include& inc : scan.includes) {
        std::string to = LayerOfInclude(inc.path);
        if (to.empty() || to == from) continue;
        if (edge_seen.insert({from, to}).second) {
          edges.push_back({from, to, file.path, inc.line, inc.path});
        }
        if (!policy.Allowed(from, to) && !line_allowed("layering", inc.line)) {
          report.Add({Severity::kError, "layering", file.path, inc.line,
                      "layer '" + from + "' may not include \"" + inc.path +
                          "\" (layer '" + to + "')",
                      "the layering DAG is in DESIGN.md; extending it is a "
                      "design decision, not a lint fix"});
        }
      }
    }

    for (const AllowState& st : allows) {
      if (st.used || st.expired) continue;
      report.Add({Severity::kNote, "allow-unused", file.path, st.allow->line,
                  "srclint-allow(" + st.allow->check +
                      ") did not match any finding",
                  "remove the annotation if the violation is gone"});
    }
  }

  for (const std::string& cycle : FindLayerCycles(edges)) {
    report.Add({Severity::kError, "include-cycle", "", 0,
                "include cycle between layers: " + cycle,
                "break the cycle by moving the shared piece down the DAG"});
  }

  for (const OpReg& r : op_regs) {
    bool has_schema = schema_names.count(r.name) != 0;
    bool has_effects = effects_names.count(r.name) != 0;
    m.ops.push_back({r.name, has_schema, has_effects});
    if (r.is_prefix) continue;  // cannot statically check a family
    if (!has_schema) {
      report.Add({Severity::kError, "op-schema", r.file, r.line,
                  "op '" + r.name + "' has no OpSchema declaration",
                  "declare it in the matching *Schemas() function in "
                  "src/ops"});
    }
    if (!has_effects) {
      report.Add({Severity::kError, "op-effects", r.file, r.line,
                  "op '" + r.name + "' has no OpEffects declaration",
                  "declare it in the matching *Effects() function in "
                  "src/ops"});
    }
  }

  m.Normalize();
  report.manifest = m;

  if (options.check_manifest) {
    std::string text = m.ToText();
    if (!tree.has_manifest) {
      report.Add({Severity::kError, "manifest-drift", tree.manifest_path, 0,
                  "no committed instrumentation manifest",
                  "run dj_srclint --update-manifest and commit the result"});
    } else if (text != tree.manifest_text) {
      Result<Manifest> committed = Manifest::FromText(tree.manifest_text);
      if (!committed.ok()) {
        report.Add({Severity::kError, "manifest-drift", tree.manifest_path, 0,
                    "committed manifest does not parse: " +
                        committed.status().message(),
                    "run dj_srclint --update-manifest and commit the result"});
      } else {
        std::vector<std::string> diffs = m.DiffAgainst(committed.value());
        constexpr size_t kMaxDiffs = 50;
        for (size_t i = 0; i < diffs.size() && i < kMaxDiffs; ++i) {
          report.Add({Severity::kError, "manifest-drift", tree.manifest_path,
                      0, diffs[i],
                      "run dj_srclint --update-manifest and commit the "
                      "result"});
        }
        if (diffs.size() > kMaxDiffs) {
          report.Add({Severity::kError, "manifest-drift", tree.manifest_path,
                      0,
                      std::to_string(diffs.size() - kMaxDiffs) +
                          " further manifest differences suppressed",
                      ""});
        }
        if (diffs.empty()) {
          report.Add({Severity::kError, "manifest-drift", tree.manifest_path,
                      0,
                      "manifest content matches but serialization differs",
                      "regenerate with dj_srclint --update-manifest"});
        }
      }
    }
  }

  if (options.check_docs) {
    if (!tree.has_robustness) {
      if (!m.fault_points.empty()) {
        report.Add({Severity::kError, "doc-fault", "docs/robustness.md", 0,
                    "fault points exist but docs/robustness.md is missing",
                    ""});
      }
    } else {
      for (const std::string& name : m.fault_points) {
        if (!name.empty() && name.back() == '*') continue;
        if (tree.robustness_doc.find(name) == std::string::npos) {
          report.Add({Severity::kError, "doc-fault", "docs/robustness.md", 0,
                      "fault point '" + name + "' is not documented",
                      "add it to the fault catalogue in docs/robustness.md"});
        }
      }
    }
    std::set<std::string> families;
    auto collect = [&families](const std::vector<std::string>& set) {
      for (const std::string& entry : set) {
        std::string_view name = entry;
        if (!name.empty() && name.back() == '*') name.remove_suffix(1);
        if (name.empty()) continue;
        size_t dot = name.find('.');
        families.insert(std::string(
            dot == std::string_view::npos ? name : name.substr(0, dot)));
      }
    };
    collect(m.counters);
    collect(m.gauges);
    collect(m.histograms);
    if (!tree.has_observability) {
      if (!families.empty()) {
        report.Add({Severity::kError, "doc-metric", "docs/observability.md", 0,
                    "metrics exist but docs/observability.md is missing", ""});
      }
    } else {
      for (const std::string& family : families) {
        std::string needle = family + ".";
        if (tree.observability_doc.find(needle) == std::string::npos &&
            tree.observability_doc.find(family) == std::string::npos) {
          report.Add({Severity::kError, "doc-metric", "docs/observability.md",
                      0,
                      "metric family '" + family + "' is not documented",
                      "add it to docs/observability.md"});
        }
      }
    }
  }

  return report;
}

}  // namespace dj::srclint
