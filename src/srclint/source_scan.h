#ifndef DJ_SRCLINT_SOURCE_SCAN_H_
#define DJ_SRCLINT_SOURCE_SCAN_H_

#include <string>
#include <string_view>
#include <vector>

namespace dj::srclint {

/// What kind of stringly-named project invariant a source reference names.
/// One enumerator per namespace the instrumentation manifest tracks.
enum class RefKind {
  kFault,       // DJ_FAULT("io.read.fail")
  kSched,       // DJ_SCHED_POINT("threadpool.drain")
  kSpan,        // DJ_OBS_SPAN / obs::Span ctor / EmitComplete[OnLane]
  kInstant,     // EmitInstant("watchdog:stall", ...)
  kCounter,     // metrics->GetCounter("executor.runs")
  kGauge,       // metrics->GetGauge("simd.kernel")
  kHistogram,   // metrics->GetHistogram("executor.unit_seconds")
  kSeries,      // spans->EmitCounter("rss_mib", ...) counter tracks
  kLock,        // dj::Mutex member_{"ThreadPool.mutex"} lock classes
  kOpRegister,  // registry->Register("text_length_filter", ...)
};

const char* RefKindName(RefKind kind);

/// Parses the spelling used by `srclint-declare(<kind>)` annotations
/// ("counter", "span", ...). Returns false for unknown kinds.
bool RefKindFromName(std::string_view name, RefKind* out);

/// A name the file contributes to the instrumentation manifest. When the
/// source builds the name from a literal head plus runtime parts
/// ("fault." + name), `is_prefix` is set and `name` holds only the head.
struct NameRef {
  RefKind kind;
  int line = 0;
  std::string name;
  bool is_prefix = false;
};

/// A recognized instrumentation call whose name argument does not start
/// with a string literal — the scanner cannot learn the name, so the
/// analyzer demands an inline srclint-declare (or srclint-allow).
struct DynamicNameSite {
  RefKind kind;
  int line = 0;
};

/// One quoted #include directive.
struct Include {
  int line = 0;
  std::string path;
};

/// One use of a banned API token. `check` is the check id the use falls
/// under ("raw-mutex", "raw-output", "determinism").
struct BannedUse {
  int line = 0;
  std::string check;
  std::string token;
};

/// An inline suppression: `// srclint-allow(<check>): <reason>` silences
/// findings of <check> on its own and the following line;
/// `// srclint-allow-file(<check>): <reason>` silences them for the whole
/// file. An optional ` until YYYY-MM-DD` inside the parens expires the
/// waiver: past that date the finding fires again plus an allow-expired
/// warning.
struct Allow {
  int line = 0;
  std::string check;
  bool file_scope = false;
  std::string expires;  // "" or "YYYY-MM-DD"
  std::string reason;
};

/// An inline manifest contribution: `// srclint-declare(<kind>): <name>`
/// for call sites that build names dynamically. A trailing '*' marks a
/// prefix ("io.*"). Declaring a kind also silences dynamic-name findings
/// of that kind in the file (the names are accounted for).
struct Declare {
  int line = 0;
  RefKind kind;
  std::string name;
  bool is_prefix = false;
};

/// A string literal inside a function whose name ends in "Schemas" or
/// "Effects" — the raw material for the static OP schema/effects coverage
/// check (declarations go through helpers and loops, so only the enclosing
/// function name is a reliable signal).
struct FnString {
  int line = 0;
  std::string function;
  std::string value;
};

/// A lexical problem (unterminated string/comment, unbalanced brackets,
/// malformed srclint annotation). Any issue fails the analyzer's
/// "parses every file" self-check.
struct ParseIssue {
  int line = 0;
  std::string message;
};

/// Everything the analyzer needs to know about one source file.
struct FileScan {
  std::string path;
  std::vector<Include> includes;
  std::vector<NameRef> names;
  std::vector<DynamicNameSite> dynamic_names;
  std::vector<BannedUse> banned;
  std::vector<Allow> allows;
  std::vector<Declare> declares;
  std::vector<FnString> fn_strings;
  std::vector<ParseIssue> issues;
};

/// Token-level scan of one C++ source file. Dependency-free and fast: no
/// preprocessing, no AST — comments, strings, and preprocessor lines are
/// lexed properly, and call/declaration context comes from a short token
/// lookback. That is exactly enough to extract the project's stringly
/// named invariants without false hits inside comments or literals.
FileScan ScanSource(std::string path, std::string_view content);

}  // namespace dj::srclint

#endif  // DJ_SRCLINT_SOURCE_SCAN_H_
