#ifndef DJ_SRCLINT_MANIFEST_H_
#define DJ_SRCLINT_MANIFEST_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dj::srclint {

/// One registered OP and whether the source tree declares its schema and
/// effects (the static half of the ops_registry_test coverage assertions).
struct OpEntry {
  std::string name;
  bool has_schema = false;
  bool has_effects = false;
};

/// The instrumentation manifest: every stringly-named invariant the source
/// tree uses, by namespace. Entries ending in '*' are prefixes — the code
/// builds the rest of the name at runtime ("io." + op_name).
///
/// The committed copy lives at srclint/manifest.json; `dj_srclint` fails on
/// drift and `--update-manifest` regenerates it byte-identically from the
/// same tree (all sets sorted, fixed serialization).
struct Manifest {
  std::vector<std::string> fault_points;
  std::vector<std::string> sched_points;
  std::vector<std::string> lock_classes;
  std::vector<std::string> counters;
  std::vector<std::string> gauges;
  std::vector<std::string> histograms;
  std::vector<std::string> spans;
  std::vector<std::string> instants;
  std::vector<std::string> counter_series;
  std::vector<OpEntry> ops;

  /// Sorts every set and drops duplicates; ToText() requires it.
  void Normalize();

  /// Deterministic pretty-JSON serialization (trailing newline included).
  /// Byte-stable across runs and platforms for a Normalize()d manifest.
  std::string ToText() const;

  /// Parses a serialized manifest. Unknown keys are errors — they mean the
  /// committed file and the tool disagree about the schema.
  static Result<Manifest> FromText(std::string_view text);

  /// Human-readable per-entry differences (added/removed names), for drift
  /// messages. `this` is the tree's manifest, `committed` the checked-in
  /// one. Empty means identical content.
  std::vector<std::string> DiffAgainst(const Manifest& committed) const;
};

/// True when `name` is covered by `set`: an exact entry, or a prefix entry
/// ("io.*") whose head matches.
bool NameCovered(const std::vector<std::string>& set, std::string_view name);

}  // namespace dj::srclint

#endif  // DJ_SRCLINT_MANIFEST_H_
