#include "srclint/source_scan.h"

#include <array>
#include <cctype>
#include <cstring>
#include <utility>

namespace dj::srclint {
namespace {

/// A significant token. The scanner never builds a full token stream — it
/// keeps a four-token lookback window, which is all the context rules need.
struct Tok {
  enum Kind { kNone, kIdent, kPunct, kString, kNumber };
  Kind kind = kNone;
  std::string text;
};

bool IsControlKeyword(std::string_view s) {
  static constexpr std::array<std::string_view, 12> kWords = {
      "if",     "for", "while",  "switch", "catch", "return",
      "do",     "else", "sizeof", "new",    "delete", "throw"};
  for (std::string_view w : kWords) {
    if (s == w) return true;
  }
  return false;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// One open paren/brace group and what we still expect to learn from it.
struct Group {
  char opener = '(';
  int line = 0;
  std::string ctx1;  // identifier immediately before the opener
  // Name-extraction state for recognized instrumentation contexts.
  bool recognized = false;
  RefKind kind = RefKind::kFault;
  int name_arg = -1;
  int arg_index = 0;
  bool at_arg_start = true;
  bool captured = false;
  bool is_time_call = false;  // time(...) — for the time(nullptr) ban
  // A head literal waiting for one token of lookahead ('+' => prefix).
  bool pending_literal = false;
  std::string pending_value;
  int pending_line = 0;
};

struct Fn {
  std::string name;
  size_t brace_count = 0;  // open-brace count just after the function's '{'
};

class Scanner {
 public:
  Scanner(std::string path, std::string_view src)
      : src_(src) {
    out_.path = std::move(path);
  }

  FileScan Run() {
    while (pos_ < src_.size()) {
      Step();
    }
    FinishPending(Tok{});  // EOF resolves a trailing pending literal
    for (const Group& g : groups_) {
      Issue(g.line, std::string("unclosed '") + g.opener + "'");
    }
    return std::move(out_);
  }

 private:
  // --- low-level cursor ----------------------------------------------------
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      line_has_token_ = false;
    }
    ++pos_;
  }

  void Issue(int line, std::string message) {
    out_.issues.push_back({line, std::move(message)});
  }

  // --- main dispatch -------------------------------------------------------
  void Step() {
    char c = Peek();
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      Advance();
      return;
    }
    if (c == '#' && !line_has_token_) {
      ReadPreprocessor();
      return;
    }
    if (c == '/' && Peek(1) == '/') {
      ReadLineComment();
      return;
    }
    if (c == '/' && Peek(1) == '*') {
      ReadBlockComment();
      return;
    }
    if (c == '"') {
      ReadString(false);
      return;
    }
    if (c == '\'') {
      ReadCharLiteral();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ReadNumber();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      ReadIdentifier();
      return;
    }
    ReadPunct();
  }

  // --- lexers --------------------------------------------------------------
  void ReadPreprocessor() {
    int start_line = line_;
    line_has_token_ = true;
    Advance();  // '#'
    while (Peek() == ' ' || Peek() == '\t') Advance();
    std::string directive;
    while (std::isalpha(static_cast<unsigned char>(Peek()))) {
      directive.push_back(Peek());
      Advance();
    }
    if (directive == "include") {
      while (Peek() == ' ' || Peek() == '\t') Advance();
      if (Peek() == '"') {
        Advance();
        std::string path;
        while (Peek() != '"' && Peek() != '\n' && Peek() != '\0') {
          path.push_back(Peek());
          Advance();
        }
        if (Peek() == '"') {
          out_.includes.push_back({start_line, std::move(path)});
        } else {
          Issue(start_line, "unterminated #include path");
        }
      }
    }
    // Consume the rest of the directive, honoring '\' line continuations
    // (this is what skips #define bodies, including DJ_FAULT's own).
    while (pos_ < src_.size()) {
      if (Peek() == '\\' && (Peek(1) == '\n' ||
                             (Peek(1) == '\r' && Peek(2) == '\n'))) {
        Advance();
        if (Peek() == '\r') Advance();
        Advance();
        continue;
      }
      if (Peek() == '\n') break;
      Advance();
    }
    history_ = {};  // a directive boundary invalidates expression context
  }

  void ReadLineComment() {
    int start_line = line_;
    Advance();
    Advance();
    std::string text;
    while (Peek() != '\n' && Peek() != '\0') {
      text.push_back(Peek());
      Advance();
    }
    // Doc-comment leaders ("///", "//!") reduce to the same text.
    std::string_view body = text;
    while (!body.empty() && (body.front() == '/' || body.front() == '!')) {
      body.remove_prefix(1);
    }
    body = Trim(body);
    if (body.rfind("srclint-", 0) == 0) ParseAnnotation(start_line, body);
  }

  void ReadBlockComment() {
    int start_line = line_;
    Advance();
    Advance();
    while (pos_ < src_.size()) {
      if (Peek() == '*' && Peek(1) == '/') {
        Advance();
        Advance();
        return;
      }
      Advance();
    }
    Issue(start_line, "unterminated block comment");
  }

  void ReadString(bool raw) {
    int start_line = line_;
    line_has_token_ = true;
    std::string value;
    if (raw) {
      // R"delim( ... )delim"
      Advance();  // '"'
      std::string delim;
      while (Peek() != '(' && Peek() != '\n' && Peek() != '\0') {
        delim.push_back(Peek());
        Advance();
      }
      if (Peek() != '(') {
        Issue(start_line, "malformed raw string delimiter");
        return;
      }
      Advance();
      std::string closer = ")" + delim + "\"";
      while (pos_ < src_.size()) {
        if (src_.compare(pos_, closer.size(), closer) == 0) {
          for (size_t i = 0; i < closer.size(); ++i) Advance();
          Emit({Tok::kString, std::move(value)}, start_line);
          return;
        }
        value.push_back(Peek());
        Advance();
      }
      Issue(start_line, "unterminated raw string literal");
      return;
    }
    Advance();  // opening '"'
    while (pos_ < src_.size()) {
      char c = Peek();
      if (c == '\\') {
        value.push_back(c);
        Advance();
        if (pos_ < src_.size()) {
          value.push_back(Peek());
          Advance();
        }
        continue;
      }
      if (c == '\n') break;
      if (c == '"') {
        Advance();
        Emit({Tok::kString, std::move(value)}, start_line);
        return;
      }
      value.push_back(c);
      Advance();
    }
    Issue(start_line, "unterminated string literal");
  }

  void ReadCharLiteral() {
    int start_line = line_;
    line_has_token_ = true;
    Advance();
    while (pos_ < src_.size()) {
      char c = Peek();
      if (c == '\\') {
        Advance();
        if (pos_ < src_.size()) Advance();
        continue;
      }
      if (c == '\n') break;
      if (c == '\'') {
        Advance();
        Emit({Tok::kNumber, "'"}, start_line);
        return;
      }
      Advance();
    }
    Issue(start_line, "unterminated character literal");
  }

  void ReadNumber() {
    int start_line = line_;
    line_has_token_ = true;
    std::string text;
    while (pos_ < src_.size()) {
      char c = Peek();
      bool exponent_sign =
          (c == '+' || c == '-') && !text.empty() &&
          (text.back() == 'e' || text.back() == 'E' ||
           text.back() == 'p' || text.back() == 'P');
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '\'' || exponent_sign) {
        text.push_back(c);
        Advance();
        continue;
      }
      break;
    }
    Emit({Tok::kNumber, std::move(text)}, start_line);
  }

  void ReadIdentifier() {
    int start_line = line_;
    line_has_token_ = true;
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      text.push_back(Peek());
      Advance();
    }
    if (text == "R" && Peek() == '"') {
      ReadString(true);
      return;
    }
    CheckBannedIdent(text, start_line);
    Emit({Tok::kIdent, std::move(text)}, start_line);
  }

  void ReadPunct() {
    int start_line = line_;
    line_has_token_ = true;
    char c = Peek();
    std::string text(1, c);
    if (c == ':' && Peek(1) == ':') {
      text = "::";
      Advance();
    } else if (c == '-' && Peek(1) == '>') {
      text = "->";
      Advance();
    }
    Advance();
    Emit({Tok::kPunct, std::move(text)}, start_line);
  }

  // --- token consumer ------------------------------------------------------
  const Tok& Back(size_t n) const {  // n=0 => most recent
    static const Tok kEmpty;
    return n < history_.size() ? history_[history_.size() - 1 - n] : kEmpty;
  }

  void PushHistory(Tok tok) {
    if (history_.size() == 4) history_.erase(history_.begin());
    history_.push_back(std::move(tok));
  }

  void Emit(Tok tok, int tok_line) {
    FinishPending(tok);

    if (tok.kind == Tok::kString) {
      // Raw material for the OP schema/effects coverage check.
      if (!functions_.empty() &&
          (EndsWith(functions_.back().name, "Schemas") ||
           EndsWith(functions_.back().name, "Effects"))) {
        out_.fn_strings.push_back({tok_line, functions_.back().name, tok.text});
      }
    }

    if (tok.kind == Tok::kPunct && tok.text == "(") {
      OpenGroup('(', tok_line);
      PushHistory(std::move(tok));
      return;
    }
    if (tok.kind == Tok::kPunct && tok.text == "{") {
      MaybeEnterFunction();
      OpenGroup('{', tok_line);
      PushHistory(std::move(tok));
      return;
    }
    if (tok.kind == Tok::kPunct && (tok.text == ")" || tok.text == "}")) {
      CloseGroup(tok.text[0], tok_line);
      PushHistory(std::move(tok));
      return;
    }

    if (!groups_.empty()) {
      Group& g = groups_.back();
      if (tok.kind == Tok::kPunct && tok.text == ",") {
        ++g.arg_index;
        g.at_arg_start = true;
      } else if (g.at_arg_start) {
        if (g.is_time_call && tok.kind == Tok::kIdent &&
            (tok.text == "nullptr" || tok.text == "NULL")) {
          out_.banned.push_back(
              {tok_line, "determinism", "time(" + tok.text + ")"});
        }
        if (g.recognized && !g.captured && g.arg_index == g.name_arg) {
          if (tok.kind == Tok::kString) {
            g.pending_literal = true;
            g.pending_value = tok.text;
            g.pending_line = tok_line;
          } else {
            out_.dynamic_names.push_back({g.kind, tok_line});
          }
          g.captured = true;
        }
        g.at_arg_start = false;
      }
    }

    if (tok.kind == Tok::kPunct && tok.text == ";") pending_fn_armed_ = false;
    PushHistory(std::move(tok));
  }

  /// Resolves a head literal waiting on one token of lookahead: a
  /// following '+' means the name is a prefix the code extends at runtime.
  void FinishPending(const Tok& next) {
    if (groups_.empty()) return;
    Group& g = groups_.back();
    if (!g.pending_literal) return;
    bool is_prefix =
        next.kind == Tok::kPunct && next.text == "+";
    out_.names.push_back(
        {g.kind, g.pending_line, g.pending_value, is_prefix});
    g.pending_literal = false;
  }

  void OpenGroup(char opener, int tok_line) {
    Group g;
    g.opener = opener;
    g.line = tok_line;

    // Context from the lookback window: ctx1 = identifier immediately
    // before the opener, ctx2 = plain-adjacent identifier before ctx1
    // (also reachable through one '::', flagged as qualified).
    std::string ctx1;
    std::string ctx2;
    bool member_call = false;
    bool qualified2 = false;
    if (Back(0).kind == Tok::kIdent) {
      ctx1 = Back(0).text;
      const Tok& before = Back(1);
      if (before.kind == Tok::kPunct &&
          (before.text == "." || before.text == "->")) {
        member_call = true;
      } else if (before.kind == Tok::kIdent) {
        ctx2 = before.text;
      } else if (before.kind == Tok::kPunct && before.text == "::" &&
                 Back(2).kind == Tok::kIdent) {
        ctx2 = Back(2).text;
        qualified2 = true;
      }
    }
    g.ctx1 = ctx1;

    if (opener == '(') {
      if (ctx1 == "DJ_FAULT") {
        g.recognized = true;
        g.kind = RefKind::kFault;
        g.name_arg = 0;
      } else if (ctx1 == "DJ_SCHED_POINT") {
        g.recognized = true;
        g.kind = RefKind::kSched;
        g.name_arg = 0;
      } else if (ctx1 == "DJ_OBS_SPAN") {
        g.recognized = true;
        g.kind = RefKind::kSpan;
        g.name_arg = 0;
      } else if (member_call) {
        if (ctx1 == "EmitInstant") {
          g.recognized = true;
          g.kind = RefKind::kInstant;
          g.name_arg = 0;
        } else if (ctx1 == "EmitComplete" || ctx1 == "EmitCompleteOnLane") {
          g.recognized = true;
          g.kind = RefKind::kSpan;
          g.name_arg = 0;
        } else if (ctx1 == "EmitCounter") {
          g.recognized = true;
          g.kind = RefKind::kSeries;
          g.name_arg = 0;
        } else if (ctx1 == "GetCounter" || ctx1 == "FindCounter") {
          g.recognized = true;
          g.kind = RefKind::kCounter;
          g.name_arg = 0;
        } else if (ctx1 == "GetGauge" || ctx1 == "FindGauge") {
          g.recognized = true;
          g.kind = RefKind::kGauge;
          g.name_arg = 0;
        } else if (ctx1 == "GetHistogram" || ctx1 == "FindHistogram") {
          g.recognized = true;
          g.kind = RefKind::kHistogram;
          g.name_arg = 0;
        } else if (ctx1 == "Register") {
          g.recognized = true;
          g.kind = RefKind::kOpRegister;
          g.name_arg = 0;
        }
      } else if (ctx2 == "Span" && !qualified2) {
        // obs::Span guard(recorder, <name>, <category>) — variable
        // declarations only; `Span::Span(` definitions come through '::'.
        g.recognized = true;
        g.kind = RefKind::kSpan;
        g.name_arg = 1;
      }
      if (ctx1 == "time") g.is_time_call = true;
    } else {  // '{'
      if (ctx2 == "Mutex" && !qualified2) {
        // dj::Mutex member_{"Class.member"} — the lock-class literal.
        g.recognized = true;
        g.kind = RefKind::kLock;
        g.name_arg = 0;
      }
    }
    groups_.push_back(std::move(g));
  }

  void CloseGroup(char closer, int tok_line) {
    char want_opener = closer == ')' ? '(' : '{';
    if (groups_.empty() || groups_.back().opener != want_opener) {
      if (issue_budget_ > 0) {
        --issue_budget_;
        Issue(tok_line, std::string("unbalanced '") + closer + "'");
      }
      return;
    }
    Group g = std::move(groups_.back());
    groups_.pop_back();
    if (closer == ')') {
      // A ')' followed (eventually) by '{' starts a function body named by
      // the identifier before the '('. Control keywords never name one.
      if (!g.ctx1.empty() && !IsControlKeyword(g.ctx1)) {
        pending_fn_ = g.ctx1;
        pending_fn_armed_ = true;
      } else {
        // `if (Check())` — the inner call armed a pending function; the
        // control-flow paren that follows must clear it.
        pending_fn_armed_ = false;
      }
    } else {
      size_t braces = BraceCount();
      while (!functions_.empty() && functions_.back().brace_count > braces) {
        functions_.pop_back();
      }
    }
  }

  size_t BraceCount() const {
    size_t n = 0;
    for (const Group& g : groups_) {
      if (g.opener == '{') ++n;
    }
    return n;
  }

  // Called from Emit *before* the '{' group is pushed.
  void MaybeEnterFunction() {
    if (pending_fn_armed_) {
      functions_.push_back({pending_fn_, BraceCount() + 1});
      pending_fn_armed_ = false;
    }
  }

  // --- banned-API idents ---------------------------------------------------
  void CheckBannedIdent(const std::string& ident, int tok_line) {
    bool std_qualified = Back(0).kind == Tok::kPunct && Back(0).text == "::" &&
                         Back(1).kind == Tok::kIdent && Back(1).text == "std";
    bool member = Back(0).kind == Tok::kPunct &&
                  (Back(0).text == "." || Back(0).text == "->");
    if (std_qualified) {
      if (ident == "mutex" || ident == "lock_guard" ||
          ident == "scoped_lock" || ident == "unique_lock") {
        out_.banned.push_back({tok_line, "raw-mutex", "std::" + ident});
        return;
      }
      if (ident == "cerr" || ident == "cout") {
        out_.banned.push_back({tok_line, "raw-output", "std::" + ident});
        return;
      }
      if (ident == "random_device") {
        out_.banned.push_back({tok_line, "determinism", "std::" + ident});
        return;
      }
    }
    if (member) return;  // obj->printf(...) is someone else's method
    if (ident == "printf" || ident == "fprintf" || ident == "puts" ||
        ident == "fputs") {
      out_.banned.push_back({tok_line, "raw-output", ident});
      return;
    }
    if (ident == "rand" || ident == "srand") {
      out_.banned.push_back({tok_line, "determinism", ident + "()"});
    }
  }

  // --- srclint annotations -------------------------------------------------
  void ParseAnnotation(int tok_line, std::string_view body) {
    bool file_scope = false;
    std::string_view rest;
    enum { kAllow, kDeclare } which;
    if (body.rfind("srclint-allow-file(", 0) == 0) {
      which = kAllow;
      file_scope = true;
      rest = body.substr(std::strlen("srclint-allow-file("));
    } else if (body.rfind("srclint-allow(", 0) == 0) {
      which = kAllow;
      rest = body.substr(std::strlen("srclint-allow("));
    } else if (body.rfind("srclint-declare(", 0) == 0) {
      which = kDeclare;
      rest = body.substr(std::strlen("srclint-declare("));
    } else {
      Issue(tok_line, "malformed srclint annotation: " + std::string(body));
      return;
    }
    size_t close = rest.find(')');
    if (close == std::string_view::npos || close + 1 >= rest.size() ||
        rest[close + 1] != ':') {
      Issue(tok_line,
            "malformed srclint annotation (want '(<arg>): <text>'): " +
                std::string(body));
      return;
    }
    std::string_view arg = Trim(rest.substr(0, close));
    std::string_view text = Trim(rest.substr(close + 2));
    if (text.empty()) {
      Issue(tok_line, "srclint annotation missing text after ':': " +
                          std::string(body));
      return;
    }
    if (which == kDeclare) {
      RefKind kind;
      if (!RefKindFromName(arg, &kind)) {
        Issue(tok_line,
              "srclint-declare with unknown kind '" + std::string(arg) + "'");
        return;
      }
      bool is_prefix = !text.empty() && text.back() == '*';
      if (is_prefix) text.remove_suffix(1);
      out_.declares.push_back(
          {tok_line, kind, std::string(text), is_prefix});
      return;
    }
    Allow allow;
    allow.line = tok_line;
    allow.file_scope = file_scope;
    allow.reason = std::string(text);
    size_t until = arg.find(" until ");
    if (until != std::string_view::npos) {
      allow.check = std::string(Trim(arg.substr(0, until)));
      allow.expires =
          std::string(Trim(arg.substr(until + std::strlen(" until "))));
      if (allow.expires.size() != 10) {
        Issue(tok_line, "srclint-allow expiry must be YYYY-MM-DD: " +
                            std::string(body));
        return;
      }
    } else {
      allow.check = std::string(arg);
    }
    if (allow.check.empty()) {
      Issue(tok_line, "srclint-allow with empty check id");
      return;
    }
    out_.allows.push_back(std::move(allow));
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  bool line_has_token_ = false;
  int issue_budget_ = 8;  // unbalanced-bracket reports before going quiet

  std::vector<Tok> history_;
  std::vector<Group> groups_;
  std::vector<Fn> functions_;
  std::string pending_fn_;
  bool pending_fn_armed_ = false;

  FileScan out_;
};

}  // namespace

const char* RefKindName(RefKind kind) {
  switch (kind) {
    case RefKind::kFault:
      return "fault";
    case RefKind::kSched:
      return "sched";
    case RefKind::kSpan:
      return "span";
    case RefKind::kInstant:
      return "instant";
    case RefKind::kCounter:
      return "counter";
    case RefKind::kGauge:
      return "gauge";
    case RefKind::kHistogram:
      return "histogram";
    case RefKind::kSeries:
      return "series";
    case RefKind::kLock:
      return "lock";
    case RefKind::kOpRegister:
      return "op";
  }
  return "unknown";
}

bool RefKindFromName(std::string_view name, RefKind* out) {
  static constexpr std::pair<std::string_view, RefKind> kKinds[] = {
      {"fault", RefKind::kFault},         {"sched", RefKind::kSched},
      {"span", RefKind::kSpan},           {"instant", RefKind::kInstant},
      {"counter", RefKind::kCounter},     {"gauge", RefKind::kGauge},
      {"histogram", RefKind::kHistogram}, {"series", RefKind::kSeries},
      {"lock", RefKind::kLock},           {"op", RefKind::kOpRegister},
  };
  for (const auto& [spelling, kind] : kKinds) {
    if (name == spelling) {
      *out = kind;
      return true;
    }
  }
  return false;
}

FileScan ScanSource(std::string path, std::string_view content) {
  return Scanner(std::move(path), content).Run();
}

}  // namespace dj::srclint
