#include "srclint/manifest.h"

#include <algorithm>

#include "json/parser.h"
#include "json/value.h"
#include "json/writer.h"

namespace dj::srclint {
namespace {

constexpr int kSchemaVersion = 1;

void SortUnique(std::vector<std::string>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

void AppendStringSet(std::string* out, std::string_view key,
                     const std::vector<std::string>& set,
                     std::string_view indent) {
  out->append(indent);
  out->push_back('"');
  out->append(key);
  out->append("\": [");
  if (set.empty()) {
    out->append("],\n");
    return;
  }
  out->push_back('\n');
  for (size_t i = 0; i < set.size(); ++i) {
    out->append(indent);
    out->append("  ");
    json::EscapeStringTo(set[i], out);
    out->append(i + 1 < set.size() ? ",\n" : "\n");
  }
  out->append(indent);
  out->append("],\n");
}

Status ReadStringSet(const json::Value& obj, std::string_view key,
                     std::vector<std::string>* out) {
  const json::Value* v = obj.as_object().Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("manifest: missing key '" +
                                   std::string(key) + "'");
  }
  if (!v->is_array()) {
    return Status::InvalidArgument("manifest: '" + std::string(key) +
                                   "' must be an array");
  }
  for (const json::Value& item : v->as_array()) {
    if (!item.is_string()) {
      return Status::InvalidArgument("manifest: '" + std::string(key) +
                                     "' entries must be strings");
    }
    out->push_back(item.as_string());
  }
  return Status::Ok();
}

void DiffSet(std::string_view what, const std::vector<std::string>& tree,
             const std::vector<std::string>& committed,
             std::vector<std::string>* out) {
  for (const std::string& name : tree) {
    if (!std::binary_search(committed.begin(), committed.end(), name)) {
      out->push_back(std::string(what) + " '" + name +
                     "' is in the tree but not the committed manifest");
    }
  }
  for (const std::string& name : committed) {
    if (!std::binary_search(tree.begin(), tree.end(), name)) {
      out->push_back(std::string(what) + " '" + name +
                     "' is in the committed manifest but not the tree");
    }
  }
}

}  // namespace

void Manifest::Normalize() {
  SortUnique(&fault_points);
  SortUnique(&sched_points);
  SortUnique(&lock_classes);
  SortUnique(&counters);
  SortUnique(&gauges);
  SortUnique(&histograms);
  SortUnique(&spans);
  SortUnique(&instants);
  SortUnique(&counter_series);
  std::sort(ops.begin(), ops.end(),
            [](const OpEntry& a, const OpEntry& b) { return a.name < b.name; });
  ops.erase(std::unique(ops.begin(), ops.end(),
                        [](const OpEntry& a, const OpEntry& b) {
                          return a.name == b.name;
                        }),
            ops.end());
}

std::string Manifest::ToText() const {
  std::string out;
  out.reserve(8192);
  out.append("{\n");
  out.append("  \"schema_version\": ");
  out.append(std::to_string(kSchemaVersion));
  out.append(",\n");
  AppendStringSet(&out, "fault_points", fault_points, "  ");
  AppendStringSet(&out, "sched_points", sched_points, "  ");
  AppendStringSet(&out, "lock_classes", lock_classes, "  ");
  out.append("  \"metrics\": {\n");
  AppendStringSet(&out, "counters", counters, "    ");
  AppendStringSet(&out, "gauges", gauges, "    ");
  AppendStringSet(&out, "histograms", histograms, "    ");
  // Strip the trailing ",\n" of the last nested set.
  out.erase(out.size() - 2);
  out.append("\n  },\n");
  AppendStringSet(&out, "spans", spans, "  ");
  AppendStringSet(&out, "instants", instants, "  ");
  AppendStringSet(&out, "counter_series", counter_series, "  ");
  out.append("  \"ops\": [");
  if (ops.empty()) {
    out.append("]\n");
  } else {
    out.push_back('\n');
    for (size_t i = 0; i < ops.size(); ++i) {
      out.append("    {\"name\": ");
      json::EscapeStringTo(ops[i].name, &out);
      out.append(", \"schema\": ");
      out.append(ops[i].has_schema ? "true" : "false");
      out.append(", \"effects\": ");
      out.append(ops[i].has_effects ? "true" : "false");
      out.append(i + 1 < ops.size() ? "},\n" : "}\n");
    }
    out.append("  ]\n");
  }
  out.append("}\n");
  return out;
}

Result<Manifest> Manifest::FromText(std::string_view text) {
  Result<json::Value> parsed = json::Parse(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument("manifest: " +
                                   parsed.status().message());
  }
  const json::Value& root = parsed.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("manifest: root must be an object");
  }
  int64_t version = root.GetInt("schema_version", -1);
  if (version != kSchemaVersion) {
    return Status::InvalidArgument(
        "manifest: schema_version " + std::to_string(version) +
        " unsupported (want " + std::to_string(kSchemaVersion) + ")");
  }
  for (const auto& [key, value] : root.as_object().entries()) {
    if (key != "schema_version" && key != "fault_points" &&
        key != "sched_points" && key != "lock_classes" && key != "metrics" &&
        key != "spans" && key != "instants" && key != "counter_series" &&
        key != "ops") {
      return Status::InvalidArgument("manifest: unknown key '" + key + "'");
    }
  }
  Manifest m;
  DJ_RETURN_IF_ERROR(ReadStringSet(root, "fault_points", &m.fault_points));
  DJ_RETURN_IF_ERROR(ReadStringSet(root, "sched_points", &m.sched_points));
  DJ_RETURN_IF_ERROR(ReadStringSet(root, "lock_classes", &m.lock_classes));
  const json::Value* metrics = root.as_object().Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return Status::InvalidArgument("manifest: missing 'metrics' object");
  }
  for (const auto& [key, value] : metrics->as_object().entries()) {
    if (key != "counters" && key != "gauges" && key != "histograms") {
      return Status::InvalidArgument("manifest: unknown metrics key '" + key +
                                     "'");
    }
  }
  DJ_RETURN_IF_ERROR(ReadStringSet(*metrics, "counters", &m.counters));
  DJ_RETURN_IF_ERROR(ReadStringSet(*metrics, "gauges", &m.gauges));
  DJ_RETURN_IF_ERROR(ReadStringSet(*metrics, "histograms", &m.histograms));
  DJ_RETURN_IF_ERROR(ReadStringSet(root, "spans", &m.spans));
  DJ_RETURN_IF_ERROR(ReadStringSet(root, "instants", &m.instants));
  DJ_RETURN_IF_ERROR(
      ReadStringSet(root, "counter_series", &m.counter_series));
  const json::Value* ops = root.as_object().Find("ops");
  if (ops == nullptr || !ops->is_array()) {
    return Status::InvalidArgument("manifest: missing 'ops' array");
  }
  for (const json::Value& entry : ops->as_array()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("manifest: 'ops' entries must be objects");
    }
    OpEntry op;
    op.name = entry.GetString("name", "");
    if (op.name.empty()) {
      return Status::InvalidArgument("manifest: op entry without a name");
    }
    op.has_schema = entry.GetBool("schema", false);
    op.has_effects = entry.GetBool("effects", false);
    m.ops.push_back(std::move(op));
  }
  return m;
}

std::vector<std::string> Manifest::DiffAgainst(
    const Manifest& committed) const {
  std::vector<std::string> out;
  DiffSet("fault point", fault_points, committed.fault_points, &out);
  DiffSet("sched point", sched_points, committed.sched_points, &out);
  DiffSet("lock class", lock_classes, committed.lock_classes, &out);
  DiffSet("counter", counters, committed.counters, &out);
  DiffSet("gauge", gauges, committed.gauges, &out);
  DiffSet("histogram", histograms, committed.histograms, &out);
  DiffSet("span", spans, committed.spans, &out);
  DiffSet("instant", instants, committed.instants, &out);
  DiffSet("counter series", counter_series, committed.counter_series, &out);
  for (const OpEntry& op : ops) {
    auto it = std::lower_bound(
        committed.ops.begin(), committed.ops.end(), op.name,
        [](const OpEntry& e, const std::string& n) { return e.name < n; });
    if (it == committed.ops.end() || it->name != op.name) {
      out.push_back("op '" + op.name +
                    "' is in the tree but not the committed manifest");
    } else if (it->has_schema != op.has_schema ||
               it->has_effects != op.has_effects) {
      out.push_back("op '" + op.name +
                    "' schema/effects coverage differs from the committed "
                    "manifest");
    }
  }
  for (const OpEntry& op : committed.ops) {
    auto it = std::lower_bound(
        ops.begin(), ops.end(), op.name,
        [](const OpEntry& e, const std::string& n) { return e.name < n; });
    if (it == ops.end() || it->name != op.name) {
      out.push_back("op '" + op.name +
                    "' is in the committed manifest but not the tree");
    }
  }
  return out;
}

bool NameCovered(const std::vector<std::string>& set, std::string_view name) {
  for (const std::string& entry : set) {
    if (!entry.empty() && entry.back() == '*') {
      std::string_view prefix(entry.data(), entry.size() - 1);
      if (name.substr(0, prefix.size()) == prefix) return true;
    } else if (name == entry) {
      return true;
    }
  }
  return false;
}

}  // namespace dj::srclint
