#ifndef DJ_SRCLINT_LAYERING_H_
#define DJ_SRCLINT_LAYERING_H_

#include <string>
#include <string_view>
#include <vector>

namespace dj::srclint {

/// Declared layering DAG for the source tree: each layer (top-level
/// directory under src/) lists the layers it may #include. Including your
/// own layer is always legal and never listed. The default policy is the
/// project's architecture; tests build small custom policies.
class LayerPolicy {
 public:
  struct Entry {
    std::string layer;
    std::vector<std::string> allowed;
  };

  LayerPolicy() = default;
  explicit LayerPolicy(std::vector<Entry> entries);

  /// The committed architecture of this repository (see DESIGN.md's
  /// layering table, which mirrors this).
  static const LayerPolicy& Default();

  bool Knows(std::string_view layer) const;
  /// True when `from` may include `to`. Unknown layers return false —
  /// callers report those separately.
  bool Allowed(std::string_view from, std::string_view to) const;

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  const Entry* Find(std::string_view layer) const;
  std::vector<Entry> entries_;  // sorted by layer
};

/// Layer of a repo-relative path: "src/obs/span.h" -> "obs". Empty when the
/// path is not of the form src/<layer>/...
std::string LayerOfPath(std::string_view path);

/// Layer of a quoted include path: "obs/span.h" -> "obs". Empty when the
/// include has no directory component.
std::string LayerOfInclude(std::string_view include_path);

/// One observed layer dependency edge (deduplicated; first occurrence).
struct LayerEdge {
  std::string from;
  std::string to;
  std::string file;  // file whose #include created the edge
  int line = 0;
  std::string include;  // the included path as written
};

/// Finds cycles in the observed layer graph. Each returned string is one
/// cycle rendered "a -> b -> a". Deterministic for a sorted edge list.
std::vector<std::string> FindLayerCycles(const std::vector<LayerEdge>& edges);

}  // namespace dj::srclint

#endif  // DJ_SRCLINT_LAYERING_H_
