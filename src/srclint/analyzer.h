#ifndef DJ_SRCLINT_ANALYZER_H_
#define DJ_SRCLINT_ANALYZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "json/value.h"
#include "srclint/layering.h"
#include "srclint/manifest.h"

namespace dj::srclint {

/// Same severity model as dj_lint: errors always gate, warnings gate under
/// --Werror, notes never gate.
enum class Severity { kError, kWarning, kNote };

const char* SeverityName(Severity severity);

/// One analyzer finding. `check` is the stable check id findings are
/// allowlisted by ("raw-mutex", "layering", "manifest-drift", ...).
struct Finding {
  Severity severity = Severity::kError;
  std::string check;
  std::string file;  // repo-relative; "" for tree-wide findings
  int line = 0;      // 0 when no single line applies
  std::string message;
  std::string hint;

  std::string ToString() const;
  json::Value ToJson() const;
};

/// Full analysis result: findings plus the manifest computed from the tree
/// (what --update-manifest writes).
struct Report {
  std::vector<Finding> findings;
  Manifest manifest;
  int errors = 0;
  int warnings = 0;
  int notes = 0;

  void Add(Finding finding);
  bool Clean(bool warnings_as_errors) const;
  json::Value ToJson() const;
};

/// One source file, path repo-relative with forward slashes
/// ("src/obs/span.h").
struct SourceFile {
  std::string path;
  std::string content;
};

/// Everything Analyze() looks at, decoupled from the filesystem so tests
/// can build fixture trees in memory.
struct SourceTree {
  std::vector<SourceFile> files;  // sorted by path
  std::string manifest_path = "srclint/manifest.json";
  bool has_manifest = false;
  std::string manifest_text;
  bool has_robustness = false;
  std::string robustness_doc;  // docs/robustness.md
  bool has_observability = false;
  std::string observability_doc;  // docs/observability.md
};

/// Loads the real tree: every .h/.cc under <root>/src (sorted), the
/// committed manifest, and the two coverage docs.
Result<SourceTree> LoadSourceTree(const std::string& root);

struct AnalyzeOptions {
  /// Layering policy; null means LayerPolicy::Default().
  const LayerPolicy* policy = nullptr;
  /// "YYYY-MM-DD" for srclint-allow expiry; "" disables expiry checking.
  std::string today;
  /// Check fault-point / metric-family doc coverage.
  bool check_docs = true;
  /// Check drift against the committed manifest.
  bool check_manifest = true;
  /// Per-check built-in allowlists (path -> may violate check). When null,
  /// DefaultFileAllowlist() applies.
  const std::vector<std::pair<std::string, std::string>>* file_allowlist =
      nullptr;  // (check, path) pairs
};

/// The project's built-in exceptions: the mutex wrapper may use std::mutex,
/// the logging sink may write to stderr.
const std::vector<std::pair<std::string, std::string>>& DefaultFileAllowlist();

/// Runs every check over the tree and computes its manifest.
Report Analyze(const SourceTree& tree, const AnalyzeOptions& options);

/// Local date as "YYYY-MM-DD" (for AnalyzeOptions::today).
std::string TodayString();

}  // namespace dj::srclint

#endif  // DJ_SRCLINT_ANALYZER_H_
