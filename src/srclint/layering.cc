#include "srclint/layering.h"

#include <algorithm>
#include <map>
#include <set>

namespace dj::srclint {

LayerPolicy::LayerPolicy(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.layer < b.layer; });
  for (Entry& e : entries_) std::sort(e.allowed.begin(), e.allowed.end());
}

const LayerPolicy& LayerPolicy::Default() {
  // Keep in sync with the layering table in DESIGN.md. An edge here is a
  // deliberate architectural decision, not a record of the status quo:
  // adding one requires the same scrutiny as adding a library dependency.
  static const LayerPolicy* kDefault = new LayerPolicy({
      {"analysis", {"common", "data", "ops", "text"}},
      {"baseline", {"common", "data", "ops"}},
      {"common", {}},
      {"compress", {"common", "fault", "obs"}},
      {"core", {"common", "compress", "data", "fault", "json", "obs", "ops",
                "yaml"}},
      {"data", {"common", "compress", "fault", "json", "obs"}},
      {"dist", {"common", "core", "data", "obs", "ops"}},
      {"eval", {"common", "data", "json", "quality", "text", "workload"}},
      {"fault", {"common", "obs"}},
      {"hpo", {"common", "data", "ops", "quality", "text"}},
      {"json", {"common"}},
      {"lint", {"common", "core", "data", "json", "ops"}},
      {"obs", {"common", "json"}},
      {"ops", {"common", "data", "json", "obs", "quality", "text"}},
      {"quality", {"common", "text"}},
      {"srclint", {"common", "json"}},
      {"text", {"common"}},
      {"workload", {"common", "data", "text"}},
      {"yaml", {"common", "json"}},
  });
  return *kDefault;
}

const LayerPolicy::Entry* LayerPolicy::Find(std::string_view layer) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), layer,
      [](const Entry& e, std::string_view l) { return e.layer < l; });
  if (it == entries_.end() || it->layer != layer) return nullptr;
  return &*it;
}

bool LayerPolicy::Knows(std::string_view layer) const {
  return Find(layer) != nullptr;
}

bool LayerPolicy::Allowed(std::string_view from, std::string_view to) const {
  if (from == to) return true;
  const Entry* e = Find(from);
  if (e == nullptr || !Knows(to)) return false;
  return std::binary_search(e->allowed.begin(), e->allowed.end(), to);
}

std::string LayerOfPath(std::string_view path) {
  if (path.rfind("src/", 0) != 0) return "";
  path.remove_prefix(4);
  size_t slash = path.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(path.substr(0, slash));
}

std::string LayerOfInclude(std::string_view include_path) {
  size_t slash = include_path.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(include_path.substr(0, slash));
}

std::vector<std::string> FindLayerCycles(const std::vector<LayerEdge>& edges) {
  std::map<std::string, std::set<std::string>> graph;
  for (const LayerEdge& e : edges) {
    if (e.from != e.to) graph[e.from].insert(e.to);
  }
  // Iterative DFS with three colors; each back edge closes one cycle. A
  // node is reported in at most one cycle, which keeps the output short
  // while still proving every strongly-connected tangle has a witness.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> cycles;
  std::vector<std::string> stack;

  struct Frame {
    std::string node;
    std::set<std::string>::const_iterator next;
  };

  for (const auto& [start, unused] : graph) {
    if (color[start] != 0) continue;
    std::vector<Frame> frames;
    frames.push_back({start, graph[start].begin()});
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::set<std::string>& succ = graph[f.node];
      if (f.next == succ.end()) {
        color[f.node] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      std::string to = *f.next;
      ++f.next;
      auto it = graph.find(to);
      int c = color[to];
      if (c == 1) {
        // Back edge: render the cycle from `to`'s position on the stack.
        std::string rendered;
        auto pos = std::find(stack.begin(), stack.end(), to);
        for (auto p = pos; p != stack.end(); ++p) {
          rendered += *p;
          rendered += " -> ";
        }
        rendered += to;
        cycles.push_back(std::move(rendered));
      } else if (c == 0 && it != graph.end()) {
        color[to] = 1;
        stack.push_back(to);
        frames.push_back({to, it->second.begin()});
      } else if (c == 0) {
        color[to] = 2;  // sink with no outgoing edges
      }
    }
  }
  return cycles;
}

}  // namespace dj::srclint
