#include "core/tracer.h"

#include <algorithm>

#include "data/io.h"
#include "json/writer.h"

namespace dj::core {

Tracer::OpTotals* Tracer::TotalsFor(std::string_view op_name) {
  for (auto& t : totals_) {
    if (t.op_name == op_name) return &t;
  }
  totals_.push_back({std::string(op_name), 0, 0, 0});
  return &totals_.back();
}

void Tracer::RecordEdit(std::string_view op_name, size_t row,
                        std::string_view before, std::string_view after) {
  MutexLock lock(&mutex_);
  OpTotals* totals = TotalsFor(op_name);
  ++totals->edited;
  size_t existing = 0;
  for (const auto& e : edits_) {
    if (e.op_name == op_name) ++existing;
  }
  if (existing < limit_) {
    edits_.push_back({std::string(op_name), row, std::string(before),
                      std::string(after)});
  }
}

void Tracer::RecordFiltered(std::string_view op_name, size_t row,
                            std::string_view text,
                            std::string_view stats_json) {
  MutexLock lock(&mutex_);
  OpTotals* totals = TotalsFor(op_name);
  ++totals->filtered;
  size_t existing = 0;
  for (const auto& e : filtered_) {
    if (e.op_name == op_name) ++existing;
  }
  if (existing < limit_) {
    filtered_.push_back({std::string(op_name), row, std::string(text),
                         std::string(stats_json)});
  }
}

void Tracer::RecordDuplicate(std::string_view op_name, std::string_view kept,
                             std::string_view removed, double similarity) {
  MutexLock lock(&mutex_);
  OpTotals* totals = TotalsFor(op_name);
  ++totals->duplicates;
  size_t existing = 0;
  for (const auto& e : duplicates_) {
    if (e.op_name == op_name) ++existing;
  }
  if (existing < limit_) {
    duplicates_.push_back({std::string(op_name), std::string(kept),
                           std::string(removed), similarity});
  }
}

std::vector<Tracer::MapperEdit> Tracer::edits() const {
  MutexLock lock(&mutex_);
  return edits_;
}

std::vector<Tracer::FilteredSample> Tracer::filtered() const {
  MutexLock lock(&mutex_);
  return filtered_;
}

std::vector<Tracer::DuplicateRecord> Tracer::duplicates() const {
  MutexLock lock(&mutex_);
  return duplicates_;
}

std::vector<Tracer::OpTotals> Tracer::Totals() const {
  MutexLock lock(&mutex_);
  return totals_;
}

std::string Tracer::Summary() const {
  MutexLock lock(&mutex_);
  std::string out = "op_name                                  edited  "
                    "filtered  duplicates\n";
  for (const auto& t : totals_) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-40s %6llu %9llu %11llu\n",
                  t.op_name.c_str(),
                  static_cast<unsigned long long>(t.edited),
                  static_cast<unsigned long long>(t.filtered),
                  static_cast<unsigned long long>(t.duplicates));
    out += buf;
  }
  return out;
}

Status Tracer::WriteTo(const std::string& dir) const {
  MutexLock lock(&mutex_);
  auto to_jsonl = [](const json::Array& rows) {
    std::string out;
    for (const json::Value& row : rows) {
      out += json::Write(row);
      out.push_back('\n');
    }
    return out;
  };
  {
    json::Array rows;
    for (const auto& e : edits_) {
      json::Object o;
      o.Set("op_name", json::Value(e.op_name));
      o.Set("row", json::Value(static_cast<int64_t>(e.row)));
      o.Set("before", json::Value(e.before));
      o.Set("after", json::Value(e.after));
      rows.emplace_back(std::move(o));
    }
    DJ_RETURN_IF_ERROR(
        data::WriteFile(dir + "/trace-mapper.jsonl", to_jsonl(rows)));
  }
  {
    json::Array rows;
    for (const auto& e : filtered_) {
      json::Object o;
      o.Set("op_name", json::Value(e.op_name));
      o.Set("row", json::Value(static_cast<int64_t>(e.row)));
      o.Set("text", json::Value(e.text));
      o.Set("stats", json::Value(e.stats_json));
      rows.emplace_back(std::move(o));
    }
    DJ_RETURN_IF_ERROR(
        data::WriteFile(dir + "/trace-filter.jsonl", to_jsonl(rows)));
  }
  {
    json::Array rows;
    for (const auto& e : duplicates_) {
      json::Object o;
      o.Set("op_name", json::Value(e.op_name));
      o.Set("kept", json::Value(e.kept_text));
      o.Set("removed", json::Value(e.removed_text));
      o.Set("similarity", json::Value(e.similarity));
      rows.emplace_back(std::move(o));
    }
    DJ_RETURN_IF_ERROR(
        data::WriteFile(dir + "/trace-duplicates.jsonl", to_jsonl(rows)));
  }
  return Status::Ok();
}

}  // namespace dj::core
