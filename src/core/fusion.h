#ifndef DJ_CORE_FUSION_H_
#define DJ_CORE_FUSION_H_

#include <memory>
#include <string>
#include <vector>

#include "ops/op_base.h"

namespace dj::core {

/// One executable unit of a fused plan: either a single OP, or a group of
/// fusible Filters executed in one pass with a shared SampleContext.
struct PlanUnit {
  /// Non-null for single-OP units.
  ops::Op* op = nullptr;
  /// Non-empty for fused units (all entries are Filters).
  std::vector<ops::Filter*> fused;

  bool is_fused() const { return !fused.empty(); }
  std::string DisplayName() const;
  double CostEstimate() const;
};

struct FusionOptions {
  bool enable_fusion = true;
  bool enable_reorder = true;
};

/// Builds the execution plan for `op_list` (paper Sec. 7 / Fig. 6):
///
///  1. Detect OP groups: maximal runs of consecutive Filters (Filters are
///     commutative with each other; Mappers/Deduplicators are barriers).
///  2. Within each group, fuse the context-sharing Filters
///     (Filter::UsesContext) into one fused OP.
///  3. Reorder each group: cheap OPs first (by CostEstimate), the fused OP
///     last, so expensive stats run on fewer samples after cheap filters
///     have discarded some.
///
/// OPs are not owned; the plan borrows raw pointers from `op_list`.
std::vector<PlanUnit> PlanFusion(
    const std::vector<std::unique_ptr<ops::Op>>& op_list,
    const FusionOptions& options);

/// Raw-pointer overload (OPs borrowed; used for pipeline subranges).
std::vector<PlanUnit> PlanFusion(const std::vector<ops::Op*>& op_list,
                                 const FusionOptions& options);

}  // namespace dj::core

#endif  // DJ_CORE_FUSION_H_
