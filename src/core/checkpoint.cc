#include "core/checkpoint.h"

#include <filesystem>

#include "data/io.h"
#include "json/parser.h"
#include "json/writer.h"

namespace dj::core {
namespace fs = std::filesystem;

Status CheckpointManager::Save(const CheckpointState& state) const {
  DJ_RETURN_IF_ERROR(data::WriteFile(
      DatasetPath(), data::SerializeDataset(state.dataset, pool_)));
  json::Object manifest;
  manifest.Set("next_op_index",
               json::Value(static_cast<int64_t>(state.next_op_index)));
  manifest.Set("pipeline_key",
               json::Value(static_cast<int64_t>(state.pipeline_key)));
  manifest.Set("num_rows",
               json::Value(static_cast<int64_t>(state.dataset.NumRows())));
  return data::WriteFile(ManifestPath(),
                         json::Write(json::Value(std::move(manifest)),
                                     {.pretty = true}));
}

Result<CheckpointState> CheckpointManager::LoadLatest() const {
  auto manifest_content = data::ReadFile(ManifestPath());
  if (!manifest_content.ok()) {
    return Status::NotFound("no checkpoint in " + dir_);
  }
  DJ_ASSIGN_OR_RETURN(json::Value manifest,
                      json::ParseStrict(manifest_content.value()));
  DJ_ASSIGN_OR_RETURN(std::string blob, data::ReadFile(DatasetPath()));
  CheckpointState state;
  state.next_op_index = static_cast<size_t>(manifest.GetInt("next_op_index", 0));
  state.pipeline_key =
      static_cast<uint64_t>(manifest.GetInt("pipeline_key", 0));
  DJ_ASSIGN_OR_RETURN(state.dataset, data::DeserializeDataset(blob, pool_));
  return state;
}

Result<CheckpointState> CheckpointManager::LoadIfCompatible(
    uint64_t expected_key) const {
  auto state = LoadLatest();
  if (!state.ok()) return state;
  if (state.value().pipeline_key != expected_key) {
    return Status::NotFound("checkpoint pipeline key mismatch (recipe changed)");
  }
  return state;
}

void CheckpointManager::Clear() const {
  std::error_code ec;
  fs::remove(ManifestPath(), ec);
  fs::remove(DatasetPath(), ec);
}

}  // namespace dj::core
