#include "core/checkpoint.h"

#include <cstdio>
#include <filesystem>

#include "common/file_util.h"
#include "common/hash.h"
#include "data/io.h"
#include "fault/fault.h"
#include "json/parser.h"
#include "json/writer.h"

namespace dj::core {
namespace fs = std::filesystem;

std::string CheckpointManager::BlobFileFor(uint64_t pipeline_key) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(pipeline_key));
  return std::string("checkpoint-") + buf + ".djds";
}

void CheckpointManager::RemoveStaleBlobs(
    const std::string& keep_basename) const {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const bool stale_blob = name.rfind("checkpoint-", 0) == 0 &&
                            name != keep_basename;
    const bool stale_tmp =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (stale_blob || stale_tmp) fs::remove(entry.path(), ec);
  }
}

Status CheckpointManager::Save(const CheckpointState& state) const {
  const std::string blob = data::SerializeDataset(state.dataset, pool_);
  const std::string blob_file = BlobFileFor(state.pipeline_key);
  const std::string blob_path = dir_ + "/" + blob_file;

  if (DJ_FAULT("ckpt.blob_write")) {
    // Simulated crash mid-blob-write: only a torn temp file lands on disk;
    // the previous checkpoint (if any) is untouched.
    WriteStringToFile(blob_path + ".tmp", std::string_view(blob).substr(
                                              0, blob.size() * 2 / 3));
    return Status::IoError("fault injected: ckpt.blob_write (torn blob temp)");
  }
  DJ_RETURN_IF_ERROR(WriteStringToFileAtomic(blob_path, blob));

  if (DJ_FAULT("ckpt.after_blob")) {
    // Simulated crash between blob and manifest: the new blob exists under
    // its own name, but the manifest still points at the previous blob —
    // the previous checkpoint stays fully loadable.
    return Status::IoError(
        "fault injected: ckpt.after_blob (crash between blob and manifest)");
  }

  json::Object manifest;
  manifest.Set("schema", json::Value(static_cast<int64_t>(2)));
  manifest.Set("next_op_index",
               json::Value(static_cast<int64_t>(state.next_op_index)));
  manifest.Set("pipeline_key",
               json::Value(static_cast<int64_t>(state.pipeline_key)));
  manifest.Set("num_rows",
               json::Value(static_cast<int64_t>(state.dataset.NumRows())));
  manifest.Set("blob_file", json::Value(blob_file));
  manifest.Set("blob_bytes", json::Value(static_cast<int64_t>(blob.size())));
  manifest.Set("blob_checksum",
               json::Value(static_cast<int64_t>(Fnv1a64(blob))));
  const std::string manifest_json =
      json::Write(json::Value(std::move(manifest)), {.pretty = true});

  if (DJ_FAULT("ckpt.manifest_write")) {
    WriteStringToFile(
        ManifestPath() + ".tmp",
        std::string_view(manifest_json).substr(0, manifest_json.size() / 2));
    return Status::IoError(
        "fault injected: ckpt.manifest_write (torn manifest temp)");
  }
  DJ_RETURN_IF_ERROR(WriteStringToFileAtomic(ManifestPath(), manifest_json));

  // The manifest now references the new blob; older blobs and stray temp
  // files from crashed Saves are garbage.
  RemoveStaleBlobs(blob_file);
  return Status::Ok();
}

Result<CheckpointState> CheckpointManager::LoadLatest() const {
  auto manifest_content = data::ReadFile(ManifestPath());
  if (!manifest_content.ok()) {
    return Status::NotFound("no checkpoint in " + dir_);
  }
  auto parsed = json::ParseStrict(manifest_content.value());
  if (!parsed.ok()) {
    return Status::Corruption("checkpoint manifest " + ManifestPath() +
                              " is unreadable (torn write?): " +
                              parsed.status().message());
  }
  const json::Value& manifest = parsed.value();

  // Schema-2 manifests name their blob file and carry its checksum; legacy
  // manifests implicitly mean checkpoint.djds with no verification data.
  std::string blob_path = LegacyDatasetPath();
  if (manifest.is_object()) {
    if (const json::Value* bf = manifest.as_object().Find("blob_file");
        bf != nullptr && bf->is_string()) {
      blob_path = dir_ + "/" + bf->as_string();
    }
  }
  auto blob = data::ReadFile(blob_path);
  if (!blob.ok()) {
    return Status::Corruption("checkpoint manifest " + ManifestPath() +
                              " points at missing/unreadable blob '" +
                              blob_path + "': " + blob.status().message());
  }
  if (manifest.is_object() &&
      manifest.as_object().Contains("blob_checksum")) {
    const uint64_t want =
        static_cast<uint64_t>(manifest.GetInt("blob_checksum", 0));
    const int64_t want_bytes = manifest.GetInt("blob_bytes", -1);
    if ((want_bytes >= 0 &&
         blob.value().size() != static_cast<size_t>(want_bytes)) ||
        Fnv1a64(blob.value()) != want) {
      return Status::Corruption(
          "checkpoint blob '" + blob_path +
          "' does not match its manifest (checksum/size mismatch — torn or "
          "corrupted write); refusing to decode");
    }
  }

  CheckpointState state;
  state.next_op_index =
      static_cast<size_t>(manifest.GetInt("next_op_index", 0));
  state.pipeline_key =
      static_cast<uint64_t>(manifest.GetInt("pipeline_key", 0));
  auto dataset = data::DeserializeDataset(blob.value(), pool_);
  if (!dataset.ok()) {
    return Status::Corruption("checkpoint blob '" + blob_path +
                              "' failed to decode: " +
                              dataset.status().message());
  }
  const int64_t want_rows = manifest.GetInt("num_rows", -1);
  if (want_rows >= 0 &&
      dataset.value().NumRows() != static_cast<size_t>(want_rows)) {
    return Status::Corruption(
        "checkpoint blob '" + blob_path + "' decoded to " +
        std::to_string(dataset.value().NumRows()) + " rows but the manifest "
        "recorded " + std::to_string(want_rows));
  }
  state.dataset = std::move(dataset).value();
  return state;
}

Result<CheckpointState> CheckpointManager::LoadIfCompatible(
    uint64_t expected_key) const {
  auto state = LoadLatest();
  if (!state.ok()) return state;
  if (state.value().pipeline_key != expected_key) {
    return Status::NotFound("checkpoint pipeline key mismatch (recipe changed)");
  }
  return state;
}

void CheckpointManager::Clear() const {
  std::error_code ec;
  fs::remove(ManifestPath(), ec);
  fs::remove(ManifestPath() + ".tmp", ec);
  fs::remove(LegacyDatasetPath(), ec);
  RemoveStaleBlobs(/*keep_basename=*/"");
}

}  // namespace dj::core
