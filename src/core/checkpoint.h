#ifndef DJ_CORE_CHECKPOINT_H_
#define DJ_CORE_CHECKPOINT_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace dj::core {

/// A saved processing site: the dataset state plus the index of the next OP
/// to execute (paper Sec. 5.1.1: "the checkpoint preserves the whole dataset
/// and processing state enabling complete recovery").
struct CheckpointState {
  size_t next_op_index = 0;
  uint64_t pipeline_key = 0;  ///< config-hash of OPs executed so far
  data::Dataset dataset;
};

/// Durable checkpoints for crash/failure recovery. A checkpoint is a DJDS
/// dataset blob plus a JSON manifest; Save overwrites the previous
/// checkpoint of the same run (the paper keeps the "most optimal recent
/// processing state").
///
/// Save is crash-atomic: the blob is written to a per-pipeline-key file via
/// temp-file + fsync + rename, and only then is the manifest — which names
/// the blob file and records its FNV checksum — swung over the old one the
/// same way. A crash at any point (including between blob and manifest)
/// leaves the previous manifest/blob pair fully intact. LoadLatest verifies
/// the manifest's blob checksum and row count before decoding, so a torn or
/// mismatched blob is rejected with a clear Corruption error instead of
/// being decoded into garbage. Fail points (src/fault) cover each crash
/// window: ckpt.blob_write, ckpt.after_blob, ckpt.manifest_write.
///
/// Thread-compatibility: CheckpointManager holds no mutex by design — one
/// instance belongs to one pipeline run and is driven from the executor
/// thread only. Crash-atomicity (rename) protects against concurrent
/// *processes* on the same directory, not concurrent threads on the same
/// instance.
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Attaches a thread pool (not owned; nullptr detaches): Save and load
  /// run the DJDS shard codec on it. Checkpoint bytes are identical with or
  /// without a pool.
  void SetPool(ThreadPool* pool) { pool_ = pool; }

  Status Save(const CheckpointState& state) const;

  /// Loads the latest checkpoint. Returns NotFound when none exists and
  /// Corruption when the manifest is unreadable, the blob is missing or
  /// torn, or the blob bytes do not match the manifest's checksum/row
  /// count — callers treat both as "no usable checkpoint" but the error
  /// text tells an operator what actually happened.
  Result<CheckpointState> LoadLatest() const;

  /// Loads only when the stored pipeline key matches `expected_key` for the
  /// stored op index — i.e., the recipe prefix is unchanged. Mismatch or
  /// absence returns NotFound.
  Result<CheckpointState> LoadIfCompatible(uint64_t expected_key) const;

  /// Removes the manifest, every checkpoint blob (current scheme and
  /// legacy single-file), and any stale temp files.
  void Clear() const;

 private:
  std::string ManifestPath() const { return dir_ + "/checkpoint.json"; }
  /// Legacy (pre-atomic-Save) single blob path, still readable.
  std::string LegacyDatasetPath() const { return dir_ + "/checkpoint.djds"; }
  std::string BlobFileFor(uint64_t pipeline_key) const;
  void RemoveStaleBlobs(const std::string& keep_basename) const;

  std::string dir_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace dj::core

#endif  // DJ_CORE_CHECKPOINT_H_
