#ifndef DJ_CORE_CHECKPOINT_H_
#define DJ_CORE_CHECKPOINT_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace dj::core {

/// A saved processing site: the dataset state plus the index of the next OP
/// to execute (paper Sec. 5.1.1: "the checkpoint preserves the whole dataset
/// and processing state enabling complete recovery").
struct CheckpointState {
  size_t next_op_index = 0;
  uint64_t pipeline_key = 0;  ///< config-hash of OPs executed so far
  data::Dataset dataset;
};

/// Durable checkpoints for crash/failure recovery. A checkpoint is a DJDS
/// dataset blob plus a JSON manifest; Save overwrites the previous
/// checkpoint of the same run (the paper keeps the "most optimal recent
/// processing state").
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Attaches a thread pool (not owned; nullptr detaches): Save and load
  /// run the DJDS shard codec on it. Checkpoint bytes are identical with or
  /// without a pool.
  void SetPool(ThreadPool* pool) { pool_ = pool; }

  Status Save(const CheckpointState& state) const;

  /// Loads the latest checkpoint; returns NotFound when none exists.
  Result<CheckpointState> LoadLatest() const;

  /// Loads only when the stored pipeline key matches `expected_key` for the
  /// stored op index — i.e., the recipe prefix is unchanged. Mismatch or
  /// absence returns NotFound.
  Result<CheckpointState> LoadIfCompatible(uint64_t expected_key) const;

  void Clear() const;

 private:
  std::string ManifestPath() const { return dir_ + "/checkpoint.json"; }
  std::string DatasetPath() const { return dir_ + "/checkpoint.djds"; }

  std::string dir_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace dj::core

#endif  // DJ_CORE_CHECKPOINT_H_
