#include "core/plan_verify.h"

#include <optional>
#include <unordered_map>

#include "ops/op_effects.h"

namespace dj::core {

std::string PlanVerdict::ToString() const {
  std::string out;
  for (const SwapRecord& s : swaps) {
    out += s.allowed ? "  + " : "  ! ";
    out += s.moved_op + " before " + s.passed_op + ": ";
    out += s.allowed ? s.justification : "REFUSED — " + s.justification;
    out += "\n";
  }
  for (const std::string& v : violations) {
    out += "  ! " + v + "\n";
  }
  out += ok ? "verdict: licensed" : "verdict: refused";
  if (ok && !swaps.empty()) {
    out += " (" + std::to_string(swaps.size()) + " swap(s) verified)";
  }
  out += "\n";
  return out;
}

namespace {

/// Effects of every plan OP, resolved once up front. `nullopt` = the OP has
/// no registered signature (or a placeholder failed to resolve) — treated
/// conservatively by the pair checks.
std::optional<ops::ResolvedEffects> ResolveFor(
    const ops::OpRegistry& registry, const ops::Op* op) {
  const ops::OpEffects* effects = registry.FindEffects(op->name());
  if (effects == nullptr) return std::nullopt;
  auto resolved = effects->Resolve(*op);
  if (!resolved.ok()) return std::nullopt;
  return std::move(resolved).value();
}

}  // namespace

PlanVerdict VerifyPlan(const std::vector<ops::Op*>& op_list,
                       const std::vector<PlanUnit>& plan,
                       const ops::OpRegistry& registry) {
  PlanVerdict verdict;

  // Flatten the plan to execution order (fused members run co-scheduled;
  // their unit-internal order stands in for it here).
  std::vector<ops::Op*> exec;
  for (const PlanUnit& unit : plan) {
    if (unit.is_fused()) {
      for (ops::Filter* f : unit.fused) exec.push_back(f);
    } else if (unit.op != nullptr) {
      exec.push_back(unit.op);
    }
  }

  // The plan must be a permutation of the recipe's OP list.
  std::unordered_map<const ops::Op*, size_t> orig_index;
  for (size_t i = 0; i < op_list.size(); ++i) orig_index[op_list[i]] = i;
  if (exec.size() != op_list.size()) {
    verdict.ok = false;
    verdict.violations.push_back(
        "plan has " + std::to_string(exec.size()) + " OP(s) but the recipe "
        "has " + std::to_string(op_list.size()) +
        " — a transformation dropped or duplicated an OP");
    return verdict;
  }
  for (ops::Op* op : exec) {
    if (orig_index.find(op) == orig_index.end()) {
      verdict.ok = false;
      verdict.violations.push_back("plan contains OP '" + op->name() +
                                   "' that is not in the recipe");
      return verdict;
    }
  }

  std::vector<std::optional<ops::ResolvedEffects>> effects;
  effects.reserve(exec.size());
  for (const ops::Op* op : exec) {
    effects.push_back(ResolveFor(registry, op));
  }

  auto check_pair = [&](size_t earlier, size_t later, bool inverted) {
    // `earlier`/`later` index `exec`; `inverted` marks a true order swap
    // (vs. a co-scheduled fused pair, which is checked but not a "swap").
    const ops::Op* a = exec[later];   // originally earlier
    const ops::Op* b = exec[earlier];  // originally later, now runs first
    if (!inverted) {
      a = exec[earlier];
      b = exec[later];
    }
    const auto& ea = inverted ? effects[later] : effects[earlier];
    const auto& eb = inverted ? effects[earlier] : effects[later];
    SwapRecord record;
    record.moved_op = b->name();
    record.passed_op = a->name();
    if (!ea.has_value() || !eb.has_value()) {
      const ops::Op* missing = !ea.has_value() ? a : b;
      record.allowed = false;
      record.justification = "'" + missing->name() +
                             "' has no effect signature; refusing to " +
                             (inverted ? "reorder" : "fuse") + " it";
    } else if (std::string conflict = ops::DescribeConflict(*ea, *eb);
               !conflict.empty()) {
      record.allowed = false;
      record.justification = conflict;
    } else {
      record.justification = "disjoint effects — " + b->name() + " " +
                             eb->DescribeSets() + "; " + a->name() + " " +
                             ea->DescribeSets();
    }
    if (!record.allowed) {
      verdict.ok = false;
      verdict.violations.push_back(
          (inverted ? "cannot run '" : "cannot fuse '") + record.moved_op +
          (inverted ? "' before '" : "' with '") + record.passed_op +
          "': " + record.justification);
    }
    if (inverted) verdict.swaps.push_back(std::move(record));
  };

  // Every order inversion vs. the recipe needs a license.
  for (size_t p = 0; p < exec.size(); ++p) {
    for (size_t q = p + 1; q < exec.size(); ++q) {
      if (orig_index[exec[p]] > orig_index[exec[q]]) {
        check_pair(p, q, /*inverted=*/true);
      }
    }
  }

  // Fused members share one pass over each row; any pair with conflicting
  // effects cannot be co-scheduled even when their order is preserved.
  size_t base = 0;
  for (const PlanUnit& unit : plan) {
    size_t n = unit.is_fused() ? unit.fused.size() : 1;
    if (unit.is_fused()) {
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          if (orig_index[exec[base + i]] < orig_index[exec[base + j]]) {
            check_pair(base + i, base + j, /*inverted=*/false);
          }
        }
      }
    }
    base += n;
  }

  return verdict;
}

PlanVerdict VerifyPlan(const std::vector<std::unique_ptr<ops::Op>>& op_list,
                       const std::vector<PlanUnit>& plan,
                       const ops::OpRegistry& registry) {
  std::vector<ops::Op*> raw;
  raw.reserve(op_list.size());
  for (const auto& op : op_list) raw.push_back(op.get());
  return VerifyPlan(raw, plan, registry);
}

}  // namespace dj::core
