#include "core/fusion.h"

#include <algorithm>

namespace dj::core {

std::string PlanUnit::DisplayName() const {
  if (!is_fused()) return std::string(op->name());
  std::string out = "fused(";
  for (size_t i = 0; i < fused.size(); ++i) {
    if (i > 0) out += ",";
    out += fused[i]->name();
  }
  out += ")";
  return out;
}

double PlanUnit::CostEstimate() const {
  if (!is_fused()) return op->CostEstimate();
  double total = 0;
  for (const ops::Filter* f : fused) total += f->CostEstimate();
  return total;
}

namespace {

/// Flushes one group of consecutive filters into plan units.
void FlushFilterGroup(std::vector<ops::Filter*>* group,
                      const FusionOptions& options,
                      std::vector<PlanUnit>* plan) {
  if (group->empty()) return;
  // Fusible filters must share a SampleContext, which is only valid for
  // filters processing the same field — partition by text_key first.
  std::vector<std::pair<std::string, std::vector<ops::Filter*>>> by_field;
  std::vector<ops::Filter*> singles;
  for (ops::Filter* f : *group) {
    if (!options.enable_fusion || !f->UsesContext()) {
      singles.push_back(f);
      continue;
    }
    bool placed = false;
    for (auto& [field, filters] : by_field) {
      if (field == f->text_key()) {
        filters.push_back(f);
        placed = true;
        break;
      }
    }
    if (!placed) {
      by_field.emplace_back(f->text_key(), std::vector<ops::Filter*>{f});
    }
  }
  std::vector<std::vector<ops::Filter*>> fused_groups;
  for (auto& [field, filters] : by_field) {
    if (filters.size() >= 2) {
      fused_groups.push_back(std::move(filters));
    } else {
      singles.push_back(filters.front());
    }
  }
  // Both sorts below are stable on CostEstimate ties: equal-cost units keep
  // recipe order, so the plan (and dj_lint --explain-plan) is deterministic
  // across platforms and STL implementations.
  if (options.enable_reorder) {
    std::stable_sort(singles.begin(), singles.end(),
                     [](const ops::Filter* a, const ops::Filter* b) {
                       return a->CostEstimate() < b->CostEstimate();
                     });
    auto group_cost = [](const std::vector<ops::Filter*>& g) {
      double total = 0;
      for (const ops::Filter* f : g) total += f->CostEstimate();
      return total;
    };
    std::stable_sort(fused_groups.begin(), fused_groups.end(),
                     [&](const std::vector<ops::Filter*>& a,
                         const std::vector<ops::Filter*>& b) {
                       return group_cost(a) < group_cost(b);
                     });
  }
  for (ops::Filter* f : singles) {
    PlanUnit unit;
    unit.op = f;
    plan->push_back(std::move(unit));
  }
  // Fused units are the most expensive in the group and run last (paper:
  // delay time-consuming fused filters so they see fewer samples).
  for (auto& fused : fused_groups) {
    PlanUnit unit;
    unit.fused = std::move(fused);
    plan->push_back(std::move(unit));
  }
  group->clear();
}

}  // namespace

std::vector<PlanUnit> PlanFusion(
    const std::vector<std::unique_ptr<ops::Op>>& op_list,
    const FusionOptions& options) {
  std::vector<ops::Op*> raw;
  raw.reserve(op_list.size());
  for (const auto& op : op_list) raw.push_back(op.get());
  return PlanFusion(raw, options);
}

std::vector<PlanUnit> PlanFusion(const std::vector<ops::Op*>& op_list,
                                 const FusionOptions& options) {
  std::vector<PlanUnit> plan;
  std::vector<ops::Filter*> filter_group;
  for (ops::Op* op : op_list) {
    if (op->kind() == ops::OpKind::kFilter) {
      filter_group.push_back(static_cast<ops::Filter*>(op));
      continue;
    }
    FlushFilterGroup(&filter_group, options, &plan);
    PlanUnit unit;
    unit.op = op;
    plan.push_back(std::move(unit));
  }
  FlushFilterGroup(&filter_group, options, &plan);
  return plan;
}

}  // namespace dj::core
