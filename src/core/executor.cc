#include "core/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_introspect.h"
#include "core/plan_verify.h"
#include "fault/fault.h"
#include "json/writer.h"

namespace dj::core {
namespace {

/// Snapshot of the processed text field of every row (used by the Tracer to
/// diff Mapper edits and to report removed duplicates).
std::vector<std::string> SnapshotTexts(data::Dataset* ds,
                                       const std::string& text_key) {
  std::vector<std::string> out;
  out.reserve(ds->NumRows());
  for (size_t i = 0; i < ds->NumRows(); ++i) {
    out.emplace_back(ds->Row(i).GetText(text_key));
  }
  return out;
}

std::string StatsJsonOf(data::RowRef row) {
  const json::Value* stats = row.Get(data::kStatsField);
  return stats == nullptr ? "{}" : json::Write(*stats);
}

}  // namespace

Result<std::vector<std::unique_ptr<ops::Op>>> BuildOps(
    const Recipe& recipe, const ops::OpRegistry& registry) {
  std::vector<std::unique_ptr<ops::Op>> out;
  out.reserve(recipe.process.size());
  for (const OpSpec& spec : recipe.process) {
    DJ_ASSIGN_OR_RETURN(std::unique_ptr<ops::Op> op,
                        registry.Create(spec.name, spec.params));
    if (op->kind() == ops::OpKind::kFormatter) {
      return Status::InvalidArgument(
          "formatter '" + spec.name +
          "' cannot appear in 'process'; formatters load datasets");
    }
    out.push_back(std::move(op));
  }
  return out;
}

std::string RunReport::ToString() const {
  std::string out;
  char buf[240];
  std::snprintf(buf, sizeof(buf),
                "%-44s %-13s %9s %9s %9s %11s %7s %7s %6s\n", "op", "kind",
                "rows_in", "rows_out", "sec", "rows/s", "%time", "%cpu",
                "cache");
  out += buf;
  // %-of-total uses the sum of per-OP seconds, not wall time, so cached
  // (zero-second) prefixes don't make the executed suffix sum to < 100%.
  double seconds_sum = 0;
  for (const OpReport& r : op_reports) seconds_sum += r.seconds;
  for (const OpReport& r : op_reports) {
    char throughput[32];
    if (r.seconds > 0) {
      std::snprintf(throughput, sizeof(throughput), "%.0f",
                    static_cast<double>(r.rows_in) / r.seconds);
    } else {
      std::snprintf(throughput, sizeof(throughput), "-");
    }
    char pct[16];
    if (seconds_sum > 0) {
      std::snprintf(pct, sizeof(pct), "%.1f%%", r.seconds / seconds_sum * 100);
    } else {
      std::snprintf(pct, sizeof(pct), "-");
    }
    char cpu[16];
    if (r.cpu_share >= 0) {
      std::snprintf(cpu, sizeof(cpu), "%.1f%%", r.cpu_share * 100);
    } else {
      std::snprintf(cpu, sizeof(cpu), "-");
    }
    std::snprintf(buf, sizeof(buf),
                  "%-44s %-13s %9zu %9zu %9.3f %11s %7s %7s %6s\n",
                  r.name.c_str(), r.kind.c_str(), r.rows_in, r.rows_out,
                  r.seconds, throughput, pct, cpu,
                  r.cache_hit ? "hit" : "-");
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "total: %.3fs, rows %zu -> %zu, cache hits %zu%s\n",
                total_seconds, rows_in, rows_out, cache_hits,
                resumed_from_checkpoint ? ", resumed from checkpoint" : "");
  out += buf;
  if (unit_seconds_p50 >= 0) {
    std::snprintf(buf, sizeof(buf),
                  "unit seconds: p50 %.3f, p95 %.3f, p99 %.3f\n",
                  unit_seconds_p50, unit_seconds_p95, unit_seconds_p99);
    out += buf;
  }
  if (plan_rejected) {
    out += "plan: refused by effect verification, ran in recipe order\n";
  } else if (plan_swaps > 0) {
    std::snprintf(buf, sizeof(buf), "plan: %zu effect-licensed swap(s)\n",
                  plan_swaps);
    out += buf;
  }
  return out;
}

Executor::Executor(Options options) : options_(std::move(options)) {}

Executor::Options Executor::OptionsFromRecipe(const Recipe& recipe) {
  Options opts;
  opts.num_workers = recipe.num_workers;
  opts.op_fusion = recipe.op_fusion;
  opts.op_reorder = recipe.op_reorder;
  opts.use_cache = recipe.use_cache;
  opts.cache_dir = recipe.cache_dir;
  opts.cache_compression = recipe.cache_compression;
  opts.use_checkpoint = recipe.use_checkpoint;
  opts.checkpoint_dir = recipe.checkpoint_dir;
  opts.dataset_source_id =
      recipe.dataset_path.empty() ? "in-memory" : recipe.dataset_path;
  return opts;
}

Status Executor::RunMapper(ops::Mapper* mapper, data::Dataset* dataset,
                           ThreadPool* pool) {
  std::optional<std::vector<std::string>> before;
  if (options_.tracer != nullptr) {
    before = SnapshotTexts(dataset, mapper->text_key());
  }
  {
    obs::Span span(options_.spans, "batch:" + mapper->name(), "batch");
    DJ_RETURN_IF_ERROR(dataset->Map(
        [mapper](data::RowRef row) {
          return mapper->ProcessRow(row, nullptr);
        },
        pool));
  }
  if (before.has_value()) {
    for (size_t i = 0; i < dataset->NumRows(); ++i) {
      std::string_view after = dataset->Row(i).GetText(mapper->text_key());
      if (after != (*before)[i]) {
        options_.tracer->RecordEdit(mapper->name(), i, (*before)[i], after);
      }
    }
  }
  return Status::Ok();
}

Status Executor::RunFilters(const std::vector<ops::Filter*>& filters,
                            data::Dataset* dataset, ThreadPool* pool) {
  dataset->EnsureColumn(data::kStatsField);
  Tracer* tracer = options_.tracer;
  auto pred = [&filters, tracer](data::RowRef row) -> Result<bool> {
    // One shared context per sample for the whole fused group: this is the
    // context-management optimization — Words()/Lines() compute once.
    std::string_view text = row.GetText(filters.front()->text_key());
    ops::SampleContext ctx(text);
    for (const ops::Filter* f : filters) {
      DJ_RETURN_IF_ERROR(f->ComputeStats(row, &ctx));
    }
    for (const ops::Filter* f : filters) {
      DJ_ASSIGN_OR_RETURN(bool keep, f->KeepRow(row));
      if (!keep) {
        if (tracer != nullptr) {
          tracer->RecordFiltered(f->name(), row.row(), text,
                                 StatsJsonOf(row));
        }
        return false;
      }
    }
    return true;
  };
  obs::Span span(options_.spans, "batch:" + filters.front()->name(), "batch");
  // Consuming Filter: survivors are moved out of the old dataset instead of
  // deep-copied (the executor owns it and discards the pre-filter state).
  DJ_ASSIGN_OR_RETURN(data::Dataset filtered,
                      std::move(*dataset).Filter(pred, pool));
  *dataset = std::move(filtered);
  return Status::Ok();
}

Status Executor::RunDeduplicator(ops::Deduplicator* dedup,
                                 data::Dataset* dataset, ThreadPool* pool) {
  dataset->EnsureColumn(data::kStatsField);
  std::optional<std::vector<std::string>> texts;
  std::vector<ops::DuplicatePair> pairs;
  if (options_.tracer != nullptr) {
    texts = SnapshotTexts(dataset, dedup->text_key());
  }
  obs::Span span(options_.spans, "batch:" + dedup->name(), "batch");
  DJ_ASSIGN_OR_RETURN(
      data::Dataset result,
      dedup->Deduplicate(std::move(*dataset), pool,
                         options_.tracer != nullptr ? &pairs : nullptr));
  *dataset = std::move(result);
  if (texts.has_value()) {
    for (const ops::DuplicatePair& p : pairs) {
      options_.tracer->RecordDuplicate(dedup->name(), (*texts)[p.kept_row],
                                       (*texts)[p.removed_row], p.similarity);
    }
  }
  return Status::Ok();
}

Status Executor::RunUnit(const PlanUnit& unit, data::Dataset* dataset,
                         ThreadPool* pool) {
  if (unit.is_fused()) {
    return RunFilters(unit.fused, dataset, pool);
  }
  switch (unit.op->kind()) {
    case ops::OpKind::kMapper:
      return RunMapper(static_cast<ops::Mapper*>(unit.op), dataset, pool);
    case ops::OpKind::kFilter:
      return RunFilters({static_cast<ops::Filter*>(unit.op)}, dataset, pool);
    case ops::OpKind::kDeduplicator:
      return RunDeduplicator(static_cast<ops::Deduplicator*>(unit.op),
                             dataset, pool);
    case ops::OpKind::kFormatter:
      return Status::InvalidArgument("formatter in pipeline");
  }
  return Status::Internal("unreachable");
}

Result<data::Dataset> Executor::Run(
    data::Dataset dataset, const std::vector<std::unique_ptr<ops::Op>>& ops,
    RunReport* report) {
  std::vector<ops::Op*> raw;
  raw.reserve(ops.size());
  for (const auto& op : ops) raw.push_back(op.get());
  return Run(std::move(dataset), raw, report);
}

Result<data::Dataset> Executor::Run(data::Dataset dataset,
                                    const std::vector<ops::Op*>& ops,
                                    RunReport* report) {
  obs::Span run_span(options_.spans, "executor.run", "executor");
  // The run's driving thread is "busy" for the watchdog the whole run and
  // beats at every unit boundary below; a unit that hangs mid-OP leaves
  // the heartbeat stale and gets dumped.
  introspect::BusyScope busy_scope;
  if (introspect::Enabled()) {
    introspect::CurrentThreadState()->SetRole("executor");
  }
  Stopwatch total_watch;
  if (!options_.faults.empty()) {
    DJ_RETURN_IF_ERROR(fault::FaultRegistry::Global().Configure(
        options_.faults));
  }
  RunReport local_report;
  RunReport* rep = report != nullptr ? report : &local_report;
  rep->op_reports.clear();
  rep->rows_in = dataset.NumRows();

  FusionOptions fusion_options{options_.op_fusion, options_.op_reorder};
  std::vector<PlanUnit> plan = PlanFusion(ops, fusion_options);

  // Static plan verification: every fusion/reorder decision must be
  // licensed by the declared OP effect signatures (no more blanket "all
  // Filters commute"). An unlicensed plan is refused and the run falls
  // back to recipe order.
  if (options_.op_fusion || options_.op_reorder) {
    const ops::OpRegistry& registry = options_.registry != nullptr
                                          ? *options_.registry
                                          : ops::OpRegistry::Global();
    PlanVerdict verdict = VerifyPlan(ops, plan, registry);
    if (!verdict.ok) {
      rep->plan_rejected = true;
      DJ_LOG(Warning)
          << "plan verification refused the optimized plan; falling back "
             "to recipe order:\n"
          << verdict.ToString();
      if (options_.metrics != nullptr) {
        options_.metrics->GetCounter("executor.plan_rejected")->Increment();
      }
      if (options_.spans != nullptr) {
        options_.spans->EmitInstant("plan.rejected", "executor",
                                    options_.spans->NowMicros());
      }
      plan = PlanFusion(ops, FusionOptions{false, false});
    } else {
      rep->plan_swaps = verdict.swaps.size();
      if (options_.metrics != nullptr && !verdict.swaps.empty()) {
        options_.metrics->GetCounter("executor.plan_swaps_verified")
            ->Add(verdict.swaps.size());
      }
    }
  }

  // Cumulative config-hash keys: key_before[i] identifies the pipeline state
  // entering unit i; key_after[i] the state after it.
  std::vector<uint64_t> key_before(plan.size() + 1);
  key_before[0] = CacheManager::InitialKey(options_.dataset_source_id);
  for (size_t i = 0; i < plan.size(); ++i) {
    uint64_t key = key_before[i];
    if (plan[i].is_fused()) {
      for (const ops::Filter* f : plan[i].fused) {
        key = CacheManager::ExtendKey(key, f->name(), f->config());
      }
    } else {
      key = CacheManager::ExtendKey(key, plan[i].op->name(),
                                    plan[i].op->config());
    }
    key_before[i + 1] = key;
  }

  size_t start_unit = 0;

  // The worker pool is created up front so the cache/checkpoint codecs can
  // shard their (de)serialization across it too, not just the OP loop.
  std::optional<ThreadPool> pool;
  if (options_.num_workers > 1) {
    pool.emplace(static_cast<size_t>(options_.num_workers));
  }
  ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  // Checkpoint resume: restore the latest compatible processing site.
  std::optional<CheckpointManager> checkpoints;
  if (options_.use_checkpoint && !options_.checkpoint_dir.empty()) {
    checkpoints.emplace(options_.checkpoint_dir);
    checkpoints->SetPool(pool_ptr);
    auto state = checkpoints->LoadLatest();
    if (!state.ok() && state.status().code() != StatusCode::kNotFound) {
      // A checkpoint exists but is torn/corrupt: refuse it loudly and run
      // from scratch rather than decoding garbage.
      DJ_LOG(Warning) << "ignoring unusable checkpoint: "
                      << state.status().ToString();
      if (options_.metrics != nullptr) {
        options_.metrics->GetCounter("checkpoint.load_rejected")->Increment();
      }
    }
    if (state.ok()) {
      for (size_t i = 0; i <= plan.size(); ++i) {
        if (key_before[i] == state.value().pipeline_key) {
          dataset = std::move(state.value().dataset);
          start_unit = i;
          rep->resumed_from_checkpoint = true;
          break;
        }
      }
      if (!rep->resumed_from_checkpoint) {
        DJ_LOG(Info) << "checkpoint incompatible with current recipe; "
                        "starting fresh";
      }
    }
  }

  // Cache scan: the longest cached prefix wins (deepest key_after hit).
  std::optional<CacheManager> cache;
  if (options_.use_cache && !options_.cache_dir.empty()) {
    obs::Span scan_span(options_.spans, "cache.scan", "cache");
    cache.emplace(options_.cache_dir, options_.cache_compression);
    cache->SetMetrics(options_.metrics);
    cache->SetPool(pool_ptr);
    for (size_t i = plan.size(); i > start_unit; --i) {
      if (!cache->Contains(key_before[i])) continue;
      auto loaded = cache->Load(key_before[i]);
      if (!loaded.ok()) {
        DJ_LOG(Warning) << "cache entry unreadable, evicting: "
                        << loaded.status().ToString();
        cache->Evict(key_before[i]);
        continue;
      }
      dataset = std::move(loaded).value();
      // Record skipped units as cache hits.
      for (size_t j = start_unit; j < i; ++j) {
        OpReport r;
        r.name = plan[j].DisplayName();
        r.kind = plan[j].is_fused() ? "fused_filter"
                                    : ops::OpKindName(plan[j].op->kind());
        r.rows_in = r.rows_out = dataset.NumRows();
        r.cache_hit = true;
        if (options_.spans != nullptr) {
          options_.spans->EmitInstant("cache.hit:" + r.name, "cache",
                                      options_.spans->NowMicros());
        }
        rep->op_reports.push_back(std::move(r));
        ++rep->cache_hits;
      }
      start_unit = i;
      break;
    }
  }

  for (size_t i = start_unit; i < plan.size(); ++i) {
    Stopwatch unit_watch;
    OpReport r;
    r.name = plan[i].DisplayName();
    r.kind = plan[i].is_fused() ? "fused_filter"
                                : ops::OpKindName(plan[i].op->kind());
    r.rows_in = dataset.NumRows();

    if (options_.inject_failure_at == static_cast<int>(i)) {
      // Checkpoint (if enabled) holds the state after unit i-1 already.
      return Status::Internal("injected failure before unit " +
                              r.name);
    }
    // Fail-point probe at every OP boundary: an armed "exec.op_abort"
    // kills the pipeline here, after the state before this unit has been
    // checkpointed — the crash window --resume must cover.
    if (DJ_FAULT("exec.op_abort")) {
      return Status::Aborted("fault injected: exec.op_abort before unit '" +
                             r.name + "'");
    }
    // Stall fault: sleep while busy without beating the heartbeat, as a
    // hung OP would. The run then continues — the point is to exercise the
    // watchdog's detection + dump path, not to kill anything.
    if (DJ_FAULT("exec.stall")) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.fault_stall_seconds));
    }
    introspect::Heartbeat();

    {
      obs::Span unit_span(options_.spans, "unit:" + r.name, "op");
      Status status = RunUnit(plan[i], &dataset, pool_ptr);
      if (!status.ok()) {
        return Status(status.code(),
                      "OP '" + r.name + "' failed: " + status.message());
      }
    }
    r.rows_out = dataset.NumRows();
    r.seconds = unit_watch.ElapsedSeconds();
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter("op." + r.name + ".rows_in")
          ->Add(r.rows_in);
      options_.metrics->GetCounter("op." + r.name + ".rows_out")
          ->Add(r.rows_out);
      options_.metrics->GetGauge("op." + r.name + ".rows_per_sec")
          ->Set(r.seconds > 0 ? static_cast<double>(r.rows_in) / r.seconds
                              : 0.0);
      options_.metrics->GetHistogram("executor.unit_seconds")
          ->Observe(r.seconds);
    }
    rep->op_reports.push_back(std::move(r));

    if (cache.has_value()) {
      obs::Span store_span(options_.spans, "cache.store", "cache");
      Status s = cache->Store(key_before[i + 1], dataset);
      if (!s.ok()) DJ_LOG(Warning) << "cache store failed: " << s.ToString();
    }
    int every = std::max(options_.checkpoint_every_n_units, 1);
    bool checkpoint_due =
        (i + 1) % static_cast<size_t>(every) == 0 || i + 1 == plan.size();
    if (checkpoints.has_value() && checkpoint_due) {
      obs::Span ckpt_span(options_.spans, "checkpoint.save", "checkpoint");
      CheckpointState state;
      state.next_op_index = i + 1;
      state.pipeline_key = key_before[i + 1];
      state.dataset = dataset;
      Status s = checkpoints->Save(state);
      if (!s.ok()) DJ_LOG(Warning) << "checkpoint failed: " << s.ToString();
      if (options_.metrics != nullptr) {
        options_.metrics->GetCounter("checkpoint.saves")->Increment();
      }
    }
  }

  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("executor.runs")->Increment();
    options_.metrics->GetCounter("executor.rows_in")->Add(rep->rows_in);
    options_.metrics->GetCounter("executor.rows_out")->Add(dataset.NumRows());
    if (const obs::Histogram* h =
            options_.metrics->FindHistogram("executor.unit_seconds");
        h != nullptr) {
      rep->unit_seconds_p50 = h->Quantile(0.50);
      rep->unit_seconds_p95 = h->Quantile(0.95);
      rep->unit_seconds_p99 = h->Quantile(0.99);
    }
  }
  introspect::Heartbeat();

  rep->rows_out = dataset.NumRows();
  rep->total_seconds = total_watch.ElapsedSeconds();
  return dataset;
}

}  // namespace dj::core
