#ifndef DJ_CORE_EXECUTOR_H_
#define DJ_CORE_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cache_manager.h"
#include "core/checkpoint.h"
#include "core/fusion.h"
#include "core/recipe.h"
#include "core/tracer.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "ops/registry.h"

namespace dj::core {

/// Instantiates the recipe's OP list from the registry.
Result<std::vector<std::unique_ptr<ops::Op>>> BuildOps(
    const Recipe& recipe, const ops::OpRegistry& registry);

/// Per-OP execution record (feeds reports, benches, and the Tracer summary).
struct OpReport {
  std::string name;
  std::string kind;
  size_t rows_in = 0;
  size_t rows_out = 0;
  double seconds = 0;
  bool cache_hit = false;
  /// Fraction of profiler samples attributed to this OP (obs::Profiler
  /// OpCpuShares), filled by the driver when a profiler ran alongside the
  /// run; -1 = no profile available. Unlike `seconds` (wall time of the
  /// unit), this measures where worker CPU actually went, so an OP that
  /// parallelizes badly shows high %time but low %cpu.
  double cpu_share = -1;
};

struct RunReport {
  std::vector<OpReport> op_reports;
  double total_seconds = 0;
  size_t rows_in = 0;
  size_t rows_out = 0;
  size_t cache_hits = 0;
  bool resumed_from_checkpoint = false;
  /// Plan verification outcome (core::VerifyPlan): how many effect-licensed
  /// order swaps the executed plan contains, and whether an unlicensed plan
  /// was refused (the executor then fell back to recipe order).
  size_t plan_swaps = 0;
  bool plan_rejected = false;
  /// Unit wall-time quantiles from the "executor.unit_seconds" histogram
  /// (bucket-interpolated, so resolution is bucket width); -1 when no
  /// metrics registry was attached.
  double unit_seconds_p50 = -1;
  double unit_seconds_p95 = -1;
  double unit_seconds_p99 = -1;

  std::string ToString() const;
};

/// Executes an OP pipeline over a dataset with the paper's Sec. 7
/// optimizations: shared per-sample contexts, OP fusion + reordering,
/// per-OP caching (config-hash keyed, optionally compressed), and
/// checkpoint-based failure recovery.
class Executor {
 public:
  struct Options {
    int num_workers = 1;
    bool op_fusion = false;
    bool op_reorder = false;

    /// Registry whose effect signatures license plan transformations
    /// (core::VerifyPlan); null = ops::OpRegistry::Global(). A plan the
    /// effects don't license is refused and the run falls back to recipe
    /// order (reported via RunReport::plan_rejected and obs).
    const ops::OpRegistry* registry = nullptr;

    bool use_cache = false;
    std::string cache_dir;
    bool cache_compression = false;
    /// Stable id of the input dataset for cache keys (e.g. its path).
    std::string dataset_source_id = "in-memory";

    bool use_checkpoint = false;
    std::string checkpoint_dir;
    /// Space-time trade-off of paper Sec. 5.1.1: checkpoint after every
    /// N-th unit (1 = after each OP, minimal re-execution; larger = less
    /// checkpoint I/O, more re-execution on failure). The final unit is
    /// always checkpointed.
    int checkpoint_every_n_units = 1;

    Tracer* tracer = nullptr;  ///< not owned; may be null

    /// Observability sinks (not owned; may be null — the hot path then
    /// degrades to a pointer check). Metrics get per-OP rows_in/rows_out
    /// counters, rows_per_sec gauges, a unit-seconds histogram, and (via
    /// CacheManager) cache hit/miss/byte counters; spans get one lane per
    /// worker thread with per-unit and per-batch complete events.
    obs::MetricsRegistry* metrics = nullptr;
    obs::SpanRecorder* spans = nullptr;

    /// Test hook: the OP at this pipeline index fails after its unit starts
    /// (-1 = disabled). Exercises checkpoint-on-failure.
    int inject_failure_at = -1;

    /// Fail-point activation spec applied to the process-wide
    /// fault::FaultRegistry at the start of Run() (same syntax as the
    /// DJ_FAULTS env var, e.g. "seed=7;exec.op_abort=n3"). Empty leaves the
    /// registry untouched. The executor probes "exec.op_abort" once per
    /// plan unit, so nth-hit specs kill the pipeline at exact OP
    /// boundaries; armed points in deeper layers (io.*, ckpt.*,
    /// compress.*) fire wherever those layers run.
    std::string faults;

    /// How long an armed "exec.stall" fault sleeps at the unit boundary —
    /// busy, without beating the heartbeat — to simulate a hung OP. The
    /// default is long enough to trip a sub-100ms watchdog threshold in
    /// tests, short enough to not slow them down.
    double fault_stall_seconds = 0.35;
  };

  explicit Executor(Options options);

  /// Convenience: options derived from a recipe.
  static Options OptionsFromRecipe(const Recipe& recipe);

  /// Runs `ops` over `dataset` and returns the processed dataset.
  /// On failure with checkpointing enabled, the state before the failing OP
  /// has been persisted; a subsequent Run with the same options resumes
  /// after the surviving prefix.
  Result<data::Dataset> Run(data::Dataset dataset,
                            const std::vector<std::unique_ptr<ops::Op>>& ops,
                            RunReport* report = nullptr);

  /// Raw-pointer overload for borrowed OP subranges.
  Result<data::Dataset> Run(data::Dataset dataset,
                            const std::vector<ops::Op*>& ops,
                            RunReport* report = nullptr);

 private:
  Status RunUnit(const PlanUnit& unit, data::Dataset* dataset,
                 ThreadPool* pool);
  Status RunMapper(ops::Mapper* mapper, data::Dataset* dataset,
                   ThreadPool* pool);
  Status RunFilters(const std::vector<ops::Filter*>& filters,
                    data::Dataset* dataset, ThreadPool* pool);
  Status RunDeduplicator(ops::Deduplicator* dedup, data::Dataset* dataset,
                         ThreadPool* pool);

  Options options_;
};

}  // namespace dj::core

#endif  // DJ_CORE_EXECUTOR_H_
