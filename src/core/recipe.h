#ifndef DJ_CORE_RECIPE_H_
#define DJ_CORE_RECIPE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "json/value.h"

namespace dj::core {

/// One entry of a recipe's "process" list: an OP name plus its parameters.
struct OpSpec {
  std::string name;
  json::Value params{json::Object()};
};

/// A data recipe — the all-in-one configuration of a processing run
/// (paper Sec. 6.1). Recipes load from YAML or JSON; unknown top-level keys
/// are preserved in `extras` so configs round-trip.
///
/// YAML shape (mirroring upstream Data-Juicer):
///   project_name: my-recipe
///   dataset_path: in.jsonl
///   export_path: out.jsonl
///   np: 4
///   use_cache: true
///   op_fusion: true
///   process:
///     - whitespace_normalization_mapper:
///     - language_id_score_filter:
///         lang: en
///         min_score: 0.8
struct Recipe {
  std::string project_name;
  std::string dataset_path;
  std::string export_path;
  int num_workers = 1;

  bool use_cache = false;
  std::string cache_dir;
  bool cache_compression = false;

  bool use_checkpoint = false;
  std::string checkpoint_dir;

  bool op_fusion = false;
  bool op_reorder = false;

  bool enable_trace = false;
  int64_t trace_limit = 10;

  std::vector<OpSpec> process;
  json::Value extras{json::Object()};

  /// Parses from a JSON value (as produced by the YAML or JSON parser).
  static Result<Recipe> FromJson(const json::Value& root);

  /// Parses from text in YAML (default) or JSON (text starting with '{').
  static Result<Recipe> FromString(std::string_view text);

  /// Loads from a .yaml/.yml/.json file.
  static Result<Recipe> FromFile(const std::string& path);

  /// Serializes back to a JSON value (stable ordering).
  json::Value ToJson() const;

  /// The recognized top-level recipe keys; anything else lands in `extras`
  /// (and is flagged by the recipe linter as a likely typo).
  static const std::vector<std::string_view>& KnownKeys();
};

}  // namespace dj::core

#endif  // DJ_CORE_RECIPE_H_
