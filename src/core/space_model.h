#ifndef DJ_CORE_SPACE_MODEL_H_
#define DJ_CORE_SPACE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ops/op_base.h"

namespace dj::core {

/// Composition of a pipeline by OP category.
struct PipelineShape {
  size_t num_mappers = 0;
  size_t num_filters = 0;
  size_t num_deduplicators = 0;
};

PipelineShape ShapeOf(const std::vector<std::unique_ptr<ops::Op>>& ops);

/// Theoretical disk usage of cache mode (paper Appendix A.2):
///   Space = (1 + M + F + 1{F>0} + D) * S
/// The extra 1{F>0} term is the cache write after the first Filter adds the
/// stats column.
uint64_t CacheModeSpaceBytes(const PipelineShape& shape,
                             uint64_t dataset_bytes);

/// Theoretical peak disk usage of checkpoint mode: 3 * S (two live cache
/// sets during handover plus the original dataset cache).
uint64_t CheckpointModeSpaceBytes(uint64_t dataset_bytes);

/// Advice produced by the disk-space planner (paper Sec. 5.1.1: the system
/// "automatically determines if, and when, checkpoints and cache should be
/// deployed" from available space).
struct SpacePlan {
  bool enable_cache = false;
  bool enable_checkpoint = false;
  uint64_t predicted_cache_bytes = 0;
  uint64_t predicted_checkpoint_bytes = 0;
};

/// Chooses cache/checkpoint deployment given the pipeline shape, the input
/// dataset size, and the available disk budget: full per-OP caching when it
/// fits, checkpoint-only when only 3*S fits, neither otherwise.
SpacePlan PlanSpace(const PipelineShape& shape, uint64_t dataset_bytes,
                    uint64_t available_disk_bytes);

}  // namespace dj::core

#endif  // DJ_CORE_SPACE_MODEL_H_
