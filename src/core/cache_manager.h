#ifndef DJ_CORE_CACHE_MANAGER_H_
#define DJ_CORE_CACHE_MANAGER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "data/dataset.h"
#include "obs/metrics.h"

namespace dj::core {

/// Per-OP dataset cache keyed by a configuration hash (paper Sec. 5.1.1 and
/// Sec. 7 "Caching OPs and Compression"). The key for OP i is the combined
/// hash of the dataset source id and the effective configs of OPs 0..i, so
/// any upstream parameter change invalidates downstream cache entries —
/// this is the "dedicated and simple hashing method" that sidesteps
/// serializing auxiliary models.
///
/// Files are DJDS blobs, optionally djlz-compressed ("<key>.djds" /
/// "<key>.djds.djlz").
///
/// Thread-compatibility: CacheManager holds no mutex by design. It is safe
/// to use distinct instances from distinct threads, but a single instance
/// must be externally synchronized (the executor drives it from the
/// pipeline thread only). Concurrent Store() calls for the *same* key from
/// different instances are crash-safe — both go through temp-file + rename
/// — but the last rename wins.
class CacheManager {
 public:
  CacheManager(std::string dir, bool compression)
      : dir_(std::move(dir)), compression_(compression) {}

  const std::string& dir() const { return dir_; }
  bool compression() const { return compression_; }

  /// Attaches a metrics sink (not owned; nullptr detaches): Contains misses
  /// bump "cache.miss", successful Loads bump "cache.hit" and
  /// "cache.load_bytes", Stores bump "cache.stores" and "cache.store_bytes".
  void SetMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Attaches a thread pool (not owned; nullptr detaches): Load and Store
  /// run the DJDS shard codec and djlz block codec on it. Cache bytes are
  /// identical with or without a pool.
  void SetPool(ThreadPool* pool) { pool_ = pool; }

  /// Extends a running key with the next OP's effective config.
  static uint64_t ExtendKey(uint64_t key, std::string_view op_name,
                            const json::Value& effective_config);

  /// Initial key for a dataset (callers pass a stable source id, e.g. the
  /// input path + row count).
  static uint64_t InitialKey(std::string_view source_id);

  bool Contains(uint64_t key) const;

  /// Loads the cached dataset for `key`; NotFound when absent.
  Result<data::Dataset> Load(uint64_t key) const;

  /// Stores `dataset` under `key` (overwrites).
  Status Store(uint64_t key, const data::Dataset& dataset) const;

  /// Removes the entry for `key` if present.
  void Evict(uint64_t key) const;

  /// Removes every cache file in the directory.
  void Clear() const;

  /// Total bytes currently used by cache files.
  uint64_t TotalBytes() const;

 private:
  std::string PathFor(uint64_t key) const;
  void Bump(std::string_view counter, uint64_t delta = 1) const;

  std::string dir_;
  bool compression_;
  obs::MetricsRegistry* metrics_ = nullptr;
  ThreadPool* pool_ = nullptr;
};

}  // namespace dj::core

#endif  // DJ_CORE_CACHE_MANAGER_H_
