#ifndef DJ_CORE_PLAN_VERIFY_H_
#define DJ_CORE_PLAN_VERIFY_H_

#include <string>
#include <vector>

#include "core/fusion.h"
#include "ops/registry.h"

namespace dj::core {

/// One order inversion PlanFusion introduced relative to the recipe, with
/// the effect-based justification (or the conflict that forbids it).
struct SwapRecord {
  std::string moved_op;     ///< originally-later OP that now runs first
  std::string passed_op;    ///< originally-earlier OP it moved ahead of
  std::string justification;  ///< why the swap is licensed, or the conflict
  bool allowed = true;
};

/// Verdict of VerifyPlan: `ok` iff every inversion and every fused pairing
/// is licensed by the declared effect signatures. `swaps` is the full audit
/// trail (allowed and refused); `violations` the human-readable refusals.
struct PlanVerdict {
  bool ok = true;
  std::vector<SwapRecord> swaps;
  std::vector<std::string> violations;

  std::string ToString() const;
};

/// Statically checks `plan` (a PlanFusion output over `op_list`) against the
/// effect signatures registered in `registry`:
///
///  - every OP of `op_list` must appear exactly once in the plan;
///  - two OPs whose order was inverted may swap only if their resolved
///    read/write sets do not conflict (ops::DescribeConflict);
///  - members of a fused unit are co-scheduled, so every pair inside a unit
///    must be conflict-free as well.
///
/// OPs without a registered effect signature are handled conservatively:
/// any inversion or fusion involving them is refused (identity plans always
/// pass). This replaces the executor's former blanket "all Filters
/// commute" assumption.
PlanVerdict VerifyPlan(const std::vector<ops::Op*>& op_list,
                       const std::vector<PlanUnit>& plan,
                       const ops::OpRegistry& registry);

/// Convenience overload over owned OP lists (core::BuildOps output).
PlanVerdict VerifyPlan(const std::vector<std::unique_ptr<ops::Op>>& op_list,
                       const std::vector<PlanUnit>& plan,
                       const ops::OpRegistry& registry);

}  // namespace dj::core

#endif  // DJ_CORE_PLAN_VERIFY_H_
