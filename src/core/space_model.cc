#include "core/space_model.h"

namespace dj::core {

PipelineShape ShapeOf(const std::vector<std::unique_ptr<ops::Op>>& ops) {
  PipelineShape shape;
  for (const auto& op : ops) {
    switch (op->kind()) {
      case ops::OpKind::kMapper:
        ++shape.num_mappers;
        break;
      case ops::OpKind::kFilter:
        ++shape.num_filters;
        break;
      case ops::OpKind::kDeduplicator:
        ++shape.num_deduplicators;
        break;
      case ops::OpKind::kFormatter:
        break;  // formatters run before the pipeline; no cache set
    }
  }
  return shape;
}

uint64_t CacheModeSpaceBytes(const PipelineShape& shape,
                             uint64_t dataset_bytes) {
  uint64_t sets = 1 + shape.num_mappers + shape.num_filters +
                  (shape.num_filters > 0 ? 1 : 0) + shape.num_deduplicators;
  return sets * dataset_bytes;
}

uint64_t CheckpointModeSpaceBytes(uint64_t dataset_bytes) {
  return 3 * dataset_bytes;
}

SpacePlan PlanSpace(const PipelineShape& shape, uint64_t dataset_bytes,
                    uint64_t available_disk_bytes) {
  SpacePlan plan;
  plan.predicted_cache_bytes = CacheModeSpaceBytes(shape, dataset_bytes);
  plan.predicted_checkpoint_bytes = CheckpointModeSpaceBytes(dataset_bytes);
  if (plan.predicted_cache_bytes <= available_disk_bytes) {
    plan.enable_cache = true;
    plan.enable_checkpoint = true;
  } else if (plan.predicted_checkpoint_bytes <= available_disk_bytes) {
    plan.enable_checkpoint = true;
  }
  return plan;
}

}  // namespace dj::core
