#include "core/recipe.h"

#include "common/string_util.h"
#include "data/io.h"
#include "json/parser.h"
#include "yaml/yaml.h"

namespace dj::core {
namespace {

bool IsKnownKey(std::string_view key) {
  for (std::string_view k : Recipe::KnownKeys()) {
    if (k == key) return true;
  }
  return false;
}

}  // namespace

const std::vector<std::string_view>& Recipe::KnownKeys() {
  static const std::vector<std::string_view> kKnownKeys = {
      "project_name",   "dataset_path", "export_path",       "np",
      "use_cache",      "cache_dir",    "cache_compression", "use_checkpoint",
      "checkpoint_dir", "op_fusion",    "op_reorder",        "enable_trace",
      "trace_limit",    "process"};
  return kKnownKeys;
}

Result<Recipe> Recipe::FromJson(const json::Value& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("recipe must be a mapping/object");
  }
  Recipe recipe;
  recipe.project_name = root.GetString("project_name", "");
  recipe.dataset_path = root.GetString("dataset_path", "");
  recipe.export_path = root.GetString("export_path", "");
  recipe.num_workers = static_cast<int>(root.GetInt("np", 1));
  recipe.use_cache = root.GetBool("use_cache", false);
  recipe.cache_dir = root.GetString("cache_dir", "");
  recipe.cache_compression = root.GetBool("cache_compression", false);
  recipe.use_checkpoint = root.GetBool("use_checkpoint", false);
  recipe.checkpoint_dir = root.GetString("checkpoint_dir", "");
  recipe.op_fusion = root.GetBool("op_fusion", false);
  recipe.op_reorder = root.GetBool("op_reorder", recipe.op_fusion);
  recipe.enable_trace = root.GetBool("enable_trace", false);
  recipe.trace_limit = root.GetInt("trace_limit", 10);
  if (recipe.num_workers < 1) {
    return Status::InvalidArgument("np must be >= 1");
  }

  const json::Value* process = root.as_object().Find("process");
  if (process != nullptr && !process->is_null()) {
    if (!process->is_array()) {
      return Status::InvalidArgument("'process' must be a list of OPs");
    }
    for (const json::Value& entry : process->as_array()) {
      if (entry.is_string()) {
        // Bare OP name with default params.
        recipe.process.push_back({entry.as_string(), json::Value(json::Object())});
        continue;
      }
      if (!entry.is_object() || entry.as_object().size() != 1) {
        return Status::InvalidArgument(
            "each 'process' entry must be a single-key mapping "
            "{op_name: {params}} or a bare op name");
      }
      const auto& [name, params] = entry.as_object().entries().front();
      if (!params.is_object() && !params.is_null()) {
        return Status::InvalidArgument("params of OP '" + name +
                                       "' must be a mapping");
      }
      OpSpec spec;
      spec.name = name;
      spec.params =
          params.is_object() ? params : json::Value(json::Object());
      recipe.process.push_back(std::move(spec));
    }
  }

  json::Object extras;
  for (const auto& [key, value] : root.as_object().entries()) {
    if (!IsKnownKey(key)) extras.Set(key, value);
  }
  recipe.extras = json::Value(std::move(extras));
  return recipe;
}

Result<Recipe> Recipe::FromString(std::string_view text) {
  std::string_view trimmed = StripAsciiWhitespace(text);
  Result<json::Value> parsed =
      !trimmed.empty() && trimmed.front() == '{' ? json::Parse(trimmed)
                                                 : yaml::Parse(text);
  if (!parsed.ok()) return parsed.status();
  return FromJson(parsed.value());
}

Result<Recipe> Recipe::FromFile(const std::string& path) {
  DJ_ASSIGN_OR_RETURN(std::string content, data::ReadFile(path));
  auto r = FromString(content);
  if (!r.ok()) {
    return Status(r.status().code(), path + ": " + r.status().message());
  }
  return r;
}

json::Value Recipe::ToJson() const {
  json::Object root;
  root.Set("project_name", json::Value(project_name));
  root.Set("dataset_path", json::Value(dataset_path));
  root.Set("export_path", json::Value(export_path));
  root.Set("np", json::Value(static_cast<int64_t>(num_workers)));
  root.Set("use_cache", json::Value(use_cache));
  root.Set("cache_dir", json::Value(cache_dir));
  root.Set("cache_compression", json::Value(cache_compression));
  root.Set("use_checkpoint", json::Value(use_checkpoint));
  root.Set("checkpoint_dir", json::Value(checkpoint_dir));
  root.Set("op_fusion", json::Value(op_fusion));
  root.Set("op_reorder", json::Value(op_reorder));
  root.Set("enable_trace", json::Value(enable_trace));
  root.Set("trace_limit", json::Value(trace_limit));
  json::Array process_list;
  for (const OpSpec& spec : process) {
    json::Object entry;
    entry.Set(spec.name, spec.params);
    process_list.emplace_back(std::move(entry));
  }
  root.Set("process", json::Value(std::move(process_list)));
  for (const auto& [key, value] : extras.as_object().entries()) {
    root.Set(key, value);
  }
  return json::Value(std::move(root));
}

}  // namespace dj::core
