#ifndef DJ_CORE_TRACER_H_
#define DJ_CORE_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dj::core {

/// Records per-OP sample changes during a run (paper Sec. 5.2, the Tracer
/// tool): pre/post edits for Mappers, discarded samples for Filters, and
/// duplicate pairs for Deduplicators. At most `limit` entries are kept per
/// OP, but totals keep counting. Thread-safe.
class Tracer {
 public:
  struct MapperEdit {
    std::string op_name;
    size_t row;
    std::string before;
    std::string after;
  };
  struct FilteredSample {
    std::string op_name;
    size_t row;
    std::string text;
    std::string stats_json;  ///< the stats that caused the drop
  };
  struct DuplicateRecord {
    std::string op_name;
    std::string kept_text;
    std::string removed_text;
    double similarity;
  };
  struct OpTotals {
    std::string op_name;
    uint64_t edited = 0;
    uint64_t filtered = 0;
    uint64_t duplicates = 0;
  };

  explicit Tracer(size_t limit_per_op = 10) : limit_(limit_per_op) {}

  void RecordEdit(std::string_view op_name, size_t row,
                  std::string_view before, std::string_view after);
  void RecordFiltered(std::string_view op_name, size_t row,
                      std::string_view text, std::string_view stats_json);
  void RecordDuplicate(std::string_view op_name, std::string_view kept,
                       std::string_view removed, double similarity);

  // Locked snapshots, by value: worker threads may still be appending when
  // a reader asks for the records, so handing out references to the live
  // vectors would race with reallocation.
  std::vector<MapperEdit> edits() const;
  std::vector<FilteredSample> filtered() const;
  std::vector<DuplicateRecord> duplicates() const;

  /// Per-OP totals, in first-seen order.
  std::vector<OpTotals> Totals() const;

  /// Human-readable summary table.
  std::string Summary() const;

  /// Writes trace-<kind>.jsonl files into `dir`.
  Status WriteTo(const std::string& dir) const;

 private:
  OpTotals* TotalsFor(std::string_view op_name) DJ_REQUIRES(mutex_);
  size_t CountFor(std::string_view op_name,
                  const std::vector<std::string>& counted) const;

  size_t limit_;
  mutable Mutex mutex_{"Tracer.mutex"};
  std::vector<MapperEdit> edits_ DJ_GUARDED_BY(mutex_);
  std::vector<FilteredSample> filtered_ DJ_GUARDED_BY(mutex_);
  std::vector<DuplicateRecord> duplicates_ DJ_GUARDED_BY(mutex_);
  std::vector<OpTotals> totals_ DJ_GUARDED_BY(mutex_);
};

}  // namespace dj::core

#endif  // DJ_CORE_TRACER_H_
