#include "core/cache_manager.h"

#include <cstdio>
#include <filesystem>

#include "common/hash.h"
#include "common/string_util.h"
#include "compress/djlz.h"
#include "data/io.h"
#include "json/writer.h"

namespace dj::core {
namespace fs = std::filesystem;

uint64_t CacheManager::InitialKey(std::string_view source_id) {
  return Fnv1a64(source_id, 0xDA7A0CACE5ULL);
}

uint64_t CacheManager::ExtendKey(uint64_t key, std::string_view op_name,
                                 const json::Value& effective_config) {
  // The effective config is serialized deterministically (insertion-ordered
  // objects), so equal configurations hash equally across runs.
  uint64_t op_hash = Fnv1a64(op_name);
  uint64_t config_hash = Fnv1a64(json::Write(effective_config));
  return HashCombine(HashCombine(key, op_hash), config_hash);
}

std::string CacheManager::PathFor(uint64_t key) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + buf + (compression_ ? ".djds.djlz" : ".djds");
}

// The Bump() names, accounted here because the call sites pass them
// through a string_view parameter:
// srclint-declare(counter): cache.hit
// srclint-declare(counter): cache.miss
// srclint-declare(counter): cache.stores
// srclint-declare(counter): cache.load_bytes
// srclint-declare(counter): cache.store_bytes
void CacheManager::Bump(std::string_view counter, uint64_t delta) const {
  if (metrics_ != nullptr) metrics_->GetCounter(counter)->Add(delta);
}

bool CacheManager::Contains(uint64_t key) const {
  std::error_code ec;
  bool present = fs::exists(PathFor(key), ec);
  if (!present) Bump("cache.miss");
  return present;
}

Result<data::Dataset> CacheManager::Load(uint64_t key) const {
  std::string path = PathFor(key);
  auto content = data::ReadFile(path);
  if (!content.ok()) {
    Bump("cache.miss");
    return Status::NotFound("cache miss for key " + path);
  }
  std::string blob = std::move(content).value();
  Bump("cache.hit");
  Bump("cache.load_bytes", blob.size());
  if (compress::IsFrame(blob)) {
    DJ_ASSIGN_OR_RETURN(blob, compress::DecompressFrame(blob, pool_));
  }
  return data::DeserializeDataset(blob, pool_);
}

Status CacheManager::Store(uint64_t key, const data::Dataset& dataset) const {
  std::string blob = data::SerializeDataset(dataset, pool_);
  if (compression_) blob = compress::CompressFrame(blob, pool_);
  Bump("cache.stores");
  Bump("cache.store_bytes", blob.size());
  return data::WriteFile(PathFor(key), blob);
}

void CacheManager::Evict(uint64_t key) const {
  std::error_code ec;
  fs::remove(PathFor(key), ec);
}

void CacheManager::Clear() const {
  std::error_code ec;
  if (!fs::exists(dir_, ec)) return;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    if (EndsWith(name, ".djds") || EndsWith(name, ".djds.djlz")) {
      fs::remove(entry.path(), ec);
    }
  }
}

uint64_t CacheManager::TotalBytes() const {
  std::error_code ec;
  if (!fs::exists(dir_, ec)) return 0;
  uint64_t total = 0;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file(ec)) {
      std::string name = entry.path().filename().string();
      if (EndsWith(name, ".djds") || EndsWith(name, ".djds.djlz")) {
        total += entry.file_size(ec);
      }
    }
  }
  return total;
}

}  // namespace dj::core
