#include "text/normalize.h"

#include <unordered_set>
#include <vector>

#include "common/string_util.h"
#include "text/utf8.h"

namespace dj::text {

std::string NormalizeWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  int pending_newlines = 0;
  bool pending_space = false;
  bool at_line_start = true;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t start = pos;
    uint32_t cp;
    DecodeUtf8(s, &pos, &cp);
    if (cp == '\n') {
      ++pending_newlines;
      pending_space = false;
      at_line_start = true;
      continue;
    }
    if (cp == '\r') continue;
    if (IsWhitespaceCp(cp)) {
      if (!at_line_start) pending_space = true;
      continue;
    }
    if (pending_newlines > 0) {
      if (!out.empty()) {
        out.append(pending_newlines >= 2 ? "\n\n" : "\n");
      }
      pending_newlines = 0;
      pending_space = false;
    } else if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.append(s.substr(start, pos - start));
    at_line_start = false;
  }
  return out;
}

std::string NormalizePunctuation(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    size_t start = pos;
    uint32_t cp;
    DecodeUtf8(s, &pos, &cp);
    switch (cp) {
      case 0x2018:  // ' left single quote
      case 0x2019:  // ' right single quote
      case 0x201A:
      case 0x2032:
        out.push_back('\'');
        break;
      case 0x201C:  // " left double quote
      case 0x201D:  // " right double quote
      case 0x201E:
      case 0x2033:
        out.push_back('"');
        break;
      case 0x2013:  // en dash
      case 0x2014:  // em dash
      case 0x2015:
      case 0x2212:  // minus sign
        out.push_back('-');
        break;
      case 0x2026:  // ellipsis
        out.append("...");
        break;
      case 0x00A0:  // NBSP
        out.push_back(' ');
        break;
      case 0x00B7:  // middle dot
        out.push_back('.');
        break;
      default:
        // Fullwidth ASCII block FF01..FF5E maps to 0x21..0x7E.
        if (cp >= 0xFF01 && cp <= 0xFF5E) {
          out.push_back(static_cast<char>(cp - 0xFF01 + 0x21));
        } else {
          out.append(s.substr(start, pos - start));
        }
    }
  }
  return out;
}

std::string FixUnicode(std::string_view s) {
  // First pass: textual replacements for the classic UTF-8-as-Latin-1
  // mojibake ("â€™" for right quote, etc.).
  std::string fixed(s);
  static const std::pair<std::string_view, std::string_view> kMojibake[] = {
      {"\xC3\xA2\xE2\x82\xAC\xE2\x84\xA2", "'"},   // â€™
      {"\xC3\xA2\xE2\x82\xAC\xC5\x93", "\""},      // â€œ
      {"\xC3\xA2\xE2\x82\xAC\xC2\x9D", "\""},      // â€<9d>
      {"\xC3\xA2\xE2\x82\xAC\xE2\x80\x9C", "-"},   // â€“
      {"\xC3\x82\xC2\xA0", " "},                   // Â<nbsp>
  };
  for (const auto& [from, to] : kMojibake) {
    fixed = ReplaceAll(fixed, from, to);
  }
  // Second pass: drop replacement chars, control chars, BOM, zero-width.
  std::string out;
  out.reserve(fixed.size());
  size_t pos = 0;
  while (pos < fixed.size()) {
    size_t start = pos;
    uint32_t cp;
    bool valid = DecodeUtf8(fixed, &pos, &cp);
    if (!valid || cp == 0xFFFD) continue;
    if (cp < 0x20 && cp != '\n' && cp != '\t') continue;
    if (cp == 0x7F) continue;
    if (cp == 0xFEFF || (cp >= 0x200B && cp <= 0x200F)) continue;
    out.append(fixed, start, pos - start);
  }
  return out;
}

std::string RemoveChars(std::string_view s, std::string_view chars) {
  std::unordered_set<uint32_t> drop;
  {
    size_t pos = 0;
    uint32_t cp;
    while (pos < chars.size()) {
      DecodeUtf8(chars, &pos, &cp);
      drop.insert(cp);
    }
  }
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    size_t start = pos;
    uint32_t cp;
    DecodeUtf8(s, &pos, &cp);
    if (drop.count(cp) > 0) continue;
    out.append(s.substr(start, pos - start));
  }
  return out;
}

}  // namespace dj::text
