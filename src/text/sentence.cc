#include "text/sentence.h"

#include <cctype>

#include "common/string_util.h"
#include "text/utf8.h"

namespace dj::text {
namespace {

bool IsAbbreviation(std::string_view text, size_t dot_pos) {
  // Walk back to the token before the dot.
  size_t start = dot_pos;
  while (start > 0 &&
         (std::isalpha(static_cast<unsigned char>(text[start - 1])) ||
          text[start - 1] == '.')) {
    --start;
  }
  std::string_view token = text.substr(start, dot_pos - start);
  static constexpr std::string_view kAbbrev[] = {
      "Dr",  "Mr",  "Mrs", "Ms",  "Prof", "Sr",   "Jr",  "St",  "vs",
      "etc", "e.g", "i.e", "Fig", "fig",  "Eq",   "eq",  "al",  "cf",
      "No",  "Vol", "pp",  "Ch",  "Sec",  "approx"};
  for (std::string_view a : kAbbrev) {
    if (token == a) return true;
  }
  // Single letters ("A.", initials) are abbreviations too.
  return token.size() == 1 &&
         std::isalpha(static_cast<unsigned char>(token[0]));
}

}  // namespace

std::vector<std::string> SplitSentences(std::string_view s) {
  std::vector<std::string> out;
  std::string current;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t start = pos;
    uint32_t cp;
    DecodeUtf8(s, &pos, &cp);
    std::string_view piece = s.substr(start, pos - start);

    bool boundary = false;
    if (cp == 0x3002 || cp == 0xFF01 || cp == 0xFF1F) {  // 。！？
      boundary = true;
    } else if (cp == '!' || cp == '?') {
      boundary = true;
    } else if (cp == '.') {
      // Not a boundary inside decimals ("3.14") or known abbreviations.
      bool prev_digit =
          start > 0 && std::isdigit(static_cast<unsigned char>(s[start - 1]));
      bool next_digit = pos < s.size() &&
                        std::isdigit(static_cast<unsigned char>(s[pos]));
      if (prev_digit && next_digit) {
        boundary = false;
      } else if (IsAbbreviation(s, start)) {
        boundary = false;
      } else {
        boundary = true;
      }
    } else if (cp == '\n') {
      // Paragraph break ends a sentence even without punctuation.
      if (pos < s.size() && s[pos] == '\n') boundary = true;
    }

    current.append(piece);
    if (boundary) {
      std::string_view trimmed = StripAsciiWhitespace(current);
      if (!trimmed.empty()) out.emplace_back(trimmed);
      current.clear();
    }
  }
  std::string_view trimmed = StripAsciiWhitespace(current);
  if (!trimmed.empty()) out.emplace_back(trimmed);
  return out;
}

std::vector<std::string> SplitParagraphs(std::string_view s) {
  std::vector<std::string> out;
  std::string current;
  for (const std::string& line : SplitLines(s)) {
    if (StripAsciiWhitespace(line).empty()) {
      std::string_view trimmed = StripAsciiWhitespace(current);
      if (!trimmed.empty()) out.emplace_back(trimmed);
      current.clear();
    } else {
      if (!current.empty()) current.push_back('\n');
      current += line;
    }
  }
  std::string_view trimmed = StripAsciiWhitespace(current);
  if (!trimmed.empty()) out.emplace_back(trimmed);
  return out;
}

}  // namespace dj::text
