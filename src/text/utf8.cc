#include "text/utf8.h"

namespace dj::text {
namespace {

constexpr uint32_t kReplacement = 0xFFFD;

}  // namespace

bool DecodeUtf8(std::string_view s, size_t* pos, uint32_t* codepoint) {
  if (*pos >= s.size()) return false;
  uint8_t b0 = static_cast<uint8_t>(s[*pos]);
  if (b0 < 0x80) {
    *codepoint = b0;
    ++*pos;
    return true;
  }
  int len;
  uint32_t cp;
  if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    cp = b0 & 0x1F;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    cp = b0 & 0x0F;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    cp = b0 & 0x07;
  } else {
    *codepoint = kReplacement;
    ++*pos;
    return false;
  }
  if (*pos + len > s.size()) {
    *codepoint = kReplacement;
    ++*pos;
    return false;
  }
  for (int i = 1; i < len; ++i) {
    uint8_t b = static_cast<uint8_t>(s[*pos + i]);
    if ((b & 0xC0) != 0x80) {
      *codepoint = kReplacement;
      ++*pos;
      return false;
    }
    cp = (cp << 6) | (b & 0x3F);
  }
  // Reject overlong encodings and surrogates.
  if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
      (len == 4 && cp < 0x10000) || (cp >= 0xD800 && cp <= 0xDFFF) ||
      cp > 0x10FFFF) {
    *codepoint = kReplacement;
    ++*pos;
    return false;
  }
  *codepoint = cp;
  *pos += len;
  return true;
}

void EncodeUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

size_t CodepointCount(std::string_view s) {
  size_t pos = 0, count = 0;
  uint32_t cp;
  while (pos < s.size()) {
    DecodeUtf8(s, &pos, &cp);
    ++count;
  }
  return count;
}

bool IsValidUtf8(std::string_view s) {
  size_t pos = 0;
  uint32_t cp;
  while (pos < s.size()) {
    if (!DecodeUtf8(s, &pos, &cp)) return false;
  }
  return true;
}

std::vector<uint32_t> DecodeAll(std::string_view s) {
  std::vector<uint32_t> out;
  out.reserve(s.size());
  size_t pos = 0;
  uint32_t cp;
  while (pos < s.size()) {
    DecodeUtf8(s, &pos, &cp);
    out.push_back(cp);
  }
  return out;
}

bool IsCjk(uint32_t cp) {
  return (cp >= 0x4E00 && cp <= 0x9FFF) ||    // CJK Unified
         (cp >= 0x3400 && cp <= 0x4DBF) ||    // Extension A
         (cp >= 0xF900 && cp <= 0xFAFF) ||    // Compatibility
         (cp >= 0x20000 && cp <= 0x2A6DF) ||  // Extension B
         (cp >= 0x3040 && cp <= 0x30FF) ||    // Hiragana/Katakana
         (cp >= 0xAC00 && cp <= 0xD7AF);      // Hangul syllables
}

bool IsAsciiAlnum(uint32_t cp) {
  return IsAsciiAlpha(cp) || IsAsciiDigit(cp);
}

bool IsAsciiAlpha(uint32_t cp) {
  return (cp >= 'a' && cp <= 'z') || (cp >= 'A' && cp <= 'Z');
}

bool IsAsciiDigit(uint32_t cp) { return cp >= '0' && cp <= '9'; }

bool IsWhitespaceCp(uint32_t cp) {
  return cp == ' ' || cp == '\t' || cp == '\n' || cp == '\r' || cp == '\f' ||
         cp == '\v' || cp == 0x00A0 || cp == 0x3000 ||
         (cp >= 0x2000 && cp <= 0x200B);
}

bool IsPunctuationCp(uint32_t cp) {
  if (cp < 0x80) {
    return (cp >= '!' && cp <= '/') || (cp >= ':' && cp <= '@') ||
           (cp >= '[' && cp <= '`') || (cp >= '{' && cp <= '~');
  }
  return (cp >= 0x2010 && cp <= 0x2027) ||  // dashes, quotes, ellipsis
         (cp >= 0x3001 && cp <= 0x303F) ||  // CJK punctuation
         (cp >= 0xFF01 && cp <= 0xFF0F) ||  // fullwidth punctuation
         (cp >= 0xFF1A && cp <= 0xFF20) || (cp >= 0xFF3B && cp <= 0xFF40) ||
         (cp >= 0xFF5B && cp <= 0xFF65) ||
         cp == 0x00A1 || cp == 0x00BF || cp == 0x00AB || cp == 0x00BB;
}

bool IsEmojiLike(uint32_t cp) {
  return (cp >= 0x1F300 && cp <= 0x1FAFF) ||  // emoji blocks
         (cp >= 0x2600 && cp <= 0x27BF) ||    // misc symbols / dingbats
         (cp >= 0xFE00 && cp <= 0xFE0F);      // variation selectors
}

}  // namespace dj::text
