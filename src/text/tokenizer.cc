#include "text/tokenizer.h"

#include <cctype>

#include "text/utf8.h"

namespace dj::text {
namespace {

bool IsWordCp(uint32_t cp) {
  if (IsAsciiAlnum(cp) || cp == '\'') return true;
  // Latin-1 and Latin Extended letters.
  if (cp >= 0x00C0 && cp <= 0x024F && cp != 0x00D7 && cp != 0x00F7) {
    return true;
  }
  // Greek / Cyrillic letters.
  if (cp >= 0x0370 && cp <= 0x04FF) return true;
  return false;
}

template <typename Emit>
void ForEachWord(std::string_view s, Emit&& emit) {
  size_t pos = 0;
  std::string current;
  while (pos < s.size()) {
    size_t start = pos;
    uint32_t cp;
    DecodeUtf8(s, &pos, &cp);
    if (IsCjk(cp)) {
      if (!current.empty()) {
        emit(std::move(current));
        current.clear();
      }
      emit(std::string(s.substr(start, pos - start)));
    } else if (IsWordCp(cp)) {
      current.append(s.substr(start, pos - start));
    } else {
      if (!current.empty()) {
        emit(std::move(current));
        current.clear();
      }
    }
  }
  if (!current.empty()) emit(std::move(current));
}

}  // namespace

std::vector<std::string> TokenizeWords(std::string_view s) {
  std::vector<std::string> out;
  ForEachWord(s, [&](std::string w) { out.push_back(std::move(w)); });
  return out;
}

std::vector<std::string> TokenizeWordsLower(std::string_view s) {
  std::vector<std::string> out = TokenizeWords(s);
  for (std::string& w : out) {
    for (char& c : w) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

std::vector<std::string> TokenizeWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

size_t CountWords(std::string_view s) {
  size_t count = 0;
  ForEachWord(s, [&](std::string) { ++count; });
  return count;
}

size_t ApproxLlmTokenCount(std::string_view s) {
  // Words plus punctuation marks; long words contribute extra subword
  // pieces (~1 per 6 chars beyond the first 6), approximating BPE growth.
  size_t tokens = 0;
  size_t pos = 0;
  size_t word_len = 0;
  while (pos < s.size()) {
    uint32_t cp;
    DecodeUtf8(s, &pos, &cp);
    if (IsWordCp(cp)) {
      ++word_len;
    } else {
      if (word_len > 0) {
        tokens += 1 + (word_len > 6 ? (word_len - 1) / 6 : 0);
        word_len = 0;
      }
      if (IsCjk(cp) || IsPunctuationCp(cp)) ++tokens;
    }
  }
  if (word_len > 0) tokens += 1 + (word_len > 6 ? (word_len - 1) / 6 : 0);
  return tokens;
}

}  // namespace dj::text
