#ifndef DJ_TEXT_LEXICONS_H_
#define DJ_TEXT_LEXICONS_H_

#include <string>
#include <string_view>
#include <unordered_set>

namespace dj::text {

/// Word lists backing the stopwords / flagged-words filters. The upstream
/// system downloads these from a cloud drive; here compact built-in lists
/// are embedded and callers may extend them from files.
class Lexicon {
 public:
  /// Built-in English stopword list (~130 function words).
  static const Lexicon& EnglishStopwords();

  /// Built-in flagged-word list (profanity/spam markers used by the
  /// flagged_words filter; intentionally mild placeholder terms plus common
  /// spam vocabulary so benches exercise the code path).
  static const Lexicon& FlaggedWords();

  /// Small verb lexicon for the text_action filter (root-verb detection).
  static const Lexicon& CommonVerbs();

  Lexicon() = default;
  explicit Lexicon(std::initializer_list<std::string_view> words);

  bool Contains(std::string_view word) const;
  void Add(std::string word);
  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace dj::text

#endif  // DJ_TEXT_LEXICONS_H_
