#include "text/lexicons.h"

namespace dj::text {

Lexicon::Lexicon(std::initializer_list<std::string_view> words) {
  for (std::string_view w : words) words_.emplace(w);
}

bool Lexicon::Contains(std::string_view word) const {
  return words_.find(std::string(word)) != words_.end();
}

void Lexicon::Add(std::string word) { words_.insert(std::move(word)); }

const Lexicon& Lexicon::EnglishStopwords() {
  static const Lexicon& lex = *new Lexicon{
      "a",     "about",  "above",  "after", "again",   "against", "all",
      "am",    "an",     "and",    "any",   "are",     "as",      "at",
      "be",    "because", "been",  "before", "being",  "below",   "between",
      "both",  "but",    "by",     "can",   "cannot",  "could",   "did",
      "do",    "does",   "doing",  "down",  "during",  "each",    "few",
      "for",   "from",   "further", "had",  "has",     "have",    "having",
      "he",    "her",    "here",   "hers",  "herself", "him",     "himself",
      "his",   "how",    "i",      "if",    "in",      "into",    "is",
      "it",    "its",    "itself", "just",  "me",      "more",    "most",
      "my",    "myself", "no",     "nor",   "not",     "now",     "of",
      "off",   "on",     "once",   "only",  "or",      "other",   "our",
      "ours",  "ourselves", "out", "over",  "own",     "same",    "she",
      "should", "so",    "some",   "such",  "than",    "that",    "the",
      "their", "theirs", "them",   "themselves", "then", "there", "these",
      "they",  "this",   "those",  "through", "to",    "too",     "under",
      "until", "up",     "very",   "was",   "we",      "were",    "what",
      "when",  "where",  "which",  "while", "who",     "whom",    "why",
      "will",  "with",   "would",  "you",   "your",    "yours",   "yourself",
      "yourselves"};
  return lex;
}

const Lexicon& Lexicon::FlaggedWords() {
  // Mild placeholder + spam vocabulary; the real deployments plug in their
  // own lists via Lexicon::Add or the filter's word_list parameter.
  static const Lexicon& lex = *new Lexicon{
      "viagra",    "casino",     "jackpot",   "lottery",   "xxx",
      "porn",      "gambling",   "betting",   "pills",     "cialis",
      "clickbait", "free-money", "get-rich",  "hot-singles", "adult",
      "nsfw",      "escort",     "crypto-pump", "penny-stock", "miracle-cure",
      "weight-loss-fast", "work-from-home-scam", "darkweb", "counterfeit",
      "replica-watches"};
  return lex;
}

const Lexicon& Lexicon::CommonVerbs() {
  static const Lexicon& lex = *new Lexicon{
      "write",  "describe", "explain",  "list",     "create",  "generate",
      "make",   "give",     "tell",     "show",     "find",    "identify",
      "compare", "summarize", "translate", "classify", "answer", "solve",
      "compute", "calculate", "design",  "analyze",  "suggest", "provide",
      "name",   "define",   "discuss",  "evaluate", "rewrite", "edit",
      "convert", "predict",  "choose",   "rank",     "extract", "detect",
      "is",     "are",      "was",      "be",       "have",    "do",
      "use",    "read",     "run",      "build",    "plan",    "improve"};
  return lex;
}

}  // namespace dj::text
