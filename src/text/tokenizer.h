#ifndef DJ_TEXT_TOKENIZER_H_
#define DJ_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace dj::text {

/// Splits text into word tokens: runs of letters/digits (ASCII and Latin-1
/// letters treated alike) stay together; each CJK codepoint is its own token
/// (standard practice for Chinese segmentation-free processing); punctuation
/// and whitespace are dropped.
std::vector<std::string> TokenizeWords(std::string_view s);

/// Lower-cased variant of TokenizeWords (ASCII case folding).
std::vector<std::string> TokenizeWordsLower(std::string_view s);

/// Splits into whitespace-delimited raw tokens (punctuation retained);
/// mirrors PySpark's standard Tokenizer used by the quality classifier.
std::vector<std::string> TokenizeWhitespace(std::string_view s);

/// Number of word tokens without materializing them.
size_t CountWords(std::string_view s);

/// Byte-pair-free "token count" proxy for LLM token budgeting: words +
/// punctuation runs, roughly proportional to a BPE tokenizer's output.
size_t ApproxLlmTokenCount(std::string_view s);

}  // namespace dj::text

#endif  // DJ_TEXT_TOKENIZER_H_
