#ifndef DJ_TEXT_NGRAM_LM_H_
#define DJ_TEXT_NGRAM_LM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace dj::text {

/// Word-level n-gram language model with Jelinek–Mercer interpolation.
/// Counts are stored hash-keyed (context hash x word hash), so memory stays
/// bounded by distinct n-grams rather than vocabulary strings.
///
/// Two roles in this repo:
///  1. the auxiliary model behind the `perplexity` filter (paper: KenLM),
///  2. the trainable "reference model" in src/eval — its held-out perplexity
///     acts as the LLM-benchmark proxy. It is deliberately sensitive to the
///     noise the OPs remove (duplicates, boilerplate, garbage tokens).
class NgramLm {
 public:
  struct Options {
    int order = 3;                ///< Maximum n-gram order (1..5).
    double lambda = 0.75;         ///< Interpolation weight for higher orders.
    double unk_log10_prob = -7.0; ///< Log10 floor for unseen unigrams.
  };

  NgramLm();
  explicit NgramLm(Options options);

  /// Accumulates counts from one document (tokenized internally, lowercase).
  void AddDocument(std::string_view text);

  /// Accumulates counts from pre-tokenized words.
  void AddTokens(const std::vector<std::string>& words);

  /// Finalizes probability tables after all AddDocument calls.
  void Finalize();

  bool finalized() const { return finalized_; }
  uint64_t total_tokens() const { return total_tokens_; }
  uint64_t vocab_size() const { return unigram_counts_.size(); }

  /// Log10 probability of `word` given the preceding context words.
  double Log10Prob(const std::vector<uint64_t>& context_hashes,
                   uint64_t word_hash) const;

  /// Corpus-convention perplexity of `text`: 10^(-avg log10 prob). Empty
  /// text returns a large sentinel (1e6).
  double Perplexity(std::string_view text) const;

  /// Average log10 probability per token (higher is better; used as the
  /// evaluation score proxy).
  double AvgLog10Prob(std::string_view text) const;

  /// Builds a small default English LM from embedded seed text; shared
  /// instance for the perplexity filter's default auxiliary model.
  static const NgramLm& DefaultEnglish();

  /// Binary checkpoint codec (magic "DJLM"): serializes counts and options
  /// so trained reference models can be stored and reloaded (paper Sec. 5.3
  /// "Reference Models ... model checkpoints").
  std::string Serialize() const;
  static Result<NgramLm> Deserialize(std::string_view bytes);

 private:
  Options options_;
  bool finalized_ = false;
  uint64_t total_tokens_ = 0;
  // Per-order n-gram counts: key = combined context+word hash.
  std::vector<std::unordered_map<uint64_t, uint32_t>> ngram_counts_;
  // Per-order context counts: key = context hash.
  std::vector<std::unordered_map<uint64_t, uint32_t>> context_counts_;
  std::unordered_map<uint64_t, uint32_t> unigram_counts_;
};

}  // namespace dj::text

#endif  // DJ_TEXT_NGRAM_LM_H_
