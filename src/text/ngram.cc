#include "text/ngram.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "text/utf8.h"

namespace dj::text {

std::vector<std::string> WordNgrams(const std::vector<std::string>& words,
                                    size_t n) {
  std::vector<std::string> out;
  if (n == 0 || words.size() < n) return out;
  out.reserve(words.size() - n + 1);
  for (size_t i = 0; i + n <= words.size(); ++i) {
    std::string gram = words[i];
    for (size_t j = 1; j < n; ++j) {
      gram.push_back('\x1f');
      gram += words[i + j];
    }
    out.push_back(std::move(gram));
  }
  return out;
}

std::vector<std::string> CharNgrams(std::string_view s, size_t n) {
  std::vector<std::string> out;
  if (n == 0) return out;
  // Collect codepoint byte offsets.
  std::vector<size_t> offsets;
  size_t pos = 0;
  uint32_t cp;
  while (pos < s.size()) {
    offsets.push_back(pos);
    DecodeUtf8(s, &pos, &cp);
  }
  offsets.push_back(s.size());
  if (offsets.size() <= n) return out;
  for (size_t i = 0; i + n < offsets.size(); ++i) {
    out.emplace_back(s.substr(offsets[i], offsets[i + n] - offsets[i]));
  }
  return out;
}

std::vector<uint64_t> HashedWordNgrams(const std::vector<std::string>& words,
                                       size_t n) {
  std::vector<uint64_t> out;
  if (n == 0 || words.size() < n) return out;
  // Precompute word hashes, then combine windows.
  std::vector<uint64_t> wh(words.size());
  for (size_t i = 0; i < words.size(); ++i) wh[i] = Fnv1a64(words[i]);
  out.reserve(words.size() - n + 1);
  for (size_t i = 0; i + n <= words.size(); ++i) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (size_t j = 0; j < n; ++j) h = HashCombine(h, wh[i + j]);
    out.push_back(h);
  }
  return out;
}

std::vector<uint64_t> HashedCharNgrams(std::string_view s, size_t n) {
  std::vector<uint64_t> out;
  if (n == 0 || s.size() < n) return out;
  out.reserve(s.size() - n + 1);
  for (size_t i = 0; i + n <= s.size(); ++i) {
    out.push_back(Fnv1a64(s.substr(i, n)));
  }
  return out;
}

double DuplicateNgramRatio(const std::vector<uint64_t>& gram_hashes) {
  if (gram_hashes.empty()) return 0.0;
  std::unordered_set<uint64_t> unique(gram_hashes.begin(), gram_hashes.end());
  return 1.0 - static_cast<double>(unique.size()) /
                   static_cast<double>(gram_hashes.size());
}

double JaccardSimilarity(std::vector<uint64_t> a, std::vector<uint64_t> b) {
  if (a.empty() && b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace dj::text
