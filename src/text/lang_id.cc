#include "text/lang_id.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/string_util.h"
#include "text/ngram.h"
#include "text/utf8.h"

namespace dj::text {
namespace {

// Seed text per language: a few dozen high-frequency sentences capturing the
// character statistics of each language. Profiles are trigram frequencies
// over the lowercased seed.
constexpr std::string_view kSeedEn =
    "the quick brown fox jumps over the lazy dog. this is a sentence about "
    "the world and the people who live in it. we are going to describe how "
    "things work and why they matter. language models are trained on large "
    "amounts of text data collected from the web. the weather today is nice "
    "and the children are playing in the park. she said that he would come "
    "to the meeting tomorrow with the report. there is no doubt that the "
    "results of the experiment were very interesting for everyone involved. "
    "please read the following instructions carefully before you begin. it "
    "was the best of times, it was the worst of times. what do you think "
    "about the new system that they have built for processing information?";

constexpr std::string_view kSeedDe =
    "der schnelle braune fuchs springt ueber den faulen hund. das ist ein "
    "satz ueber die welt und die menschen die darin leben. wir werden "
    "beschreiben wie die dinge funktionieren und warum sie wichtig sind. "
    "das wetter ist heute schoen und die kinder spielen im park. sie sagte "
    "dass er morgen mit dem bericht zur besprechung kommen wuerde. es gibt "
    "keinen zweifel dass die ergebnisse des experiments sehr interessant "
    "waren. bitte lesen sie die folgenden anweisungen sorgfaeltig durch "
    "bevor sie beginnen. was denken sie ueber das neue system das sie "
    "gebaut haben?";

constexpr std::string_view kSeedFr =
    "le rapide renard brun saute par dessus le chien paresseux. ceci est une "
    "phrase sur le monde et les gens qui y vivent. nous allons decrire "
    "comment les choses fonctionnent et pourquoi elles sont importantes. le "
    "temps est beau aujourd'hui et les enfants jouent dans le parc. elle a "
    "dit qu'il viendrait demain a la reunion avec le rapport. il n'y a "
    "aucun doute que les resultats de l'experience etaient tres "
    "interessants. veuillez lire attentivement les instructions suivantes "
    "avant de commencer. que pensez vous du nouveau systeme qu'ils ont "
    "construit?";

constexpr std::string_view kSeedEs =
    "el rapido zorro marron salta sobre el perro perezoso. esta es una "
    "frase sobre el mundo y la gente que vive en el. vamos a describir como "
    "funcionan las cosas y por que son importantes. el tiempo es bueno hoy "
    "y los ninos juegan en el parque. ella dijo que el vendria manana a la "
    "reunion con el informe. no hay duda de que los resultados del "
    "experimento fueron muy interesantes para todos. por favor lea "
    "atentamente las siguientes instrucciones antes de comenzar. que piensa "
    "usted del nuevo sistema que han construido?";

// Chinese seed: common sentences (UTF-8 literals).
constexpr std::string_view kSeedZh =
    "\xe4\xbb\x8a\xe5\xa4\xa9\xe5\xa4\xa9\xe6\xb0\x94\xe5\xbe\x88\xe5\xa5\xbd"
    "\xe3\x80\x82\xe6\x88\x91\xe4\xbb\xac\xe5\x9c\xa8\xe5\x85\xac\xe5\x9b\xad"
    "\xe9\x87\x8c\xe6\x95\xa3\xe6\xad\xa5\xe3\x80\x82\xe8\xbf\x99\xe6\x98\xaf"
    "\xe4\xb8\x80\xe4\xb8\xaa\xe5\x85\xb3\xe4\xba\x8e\xe4\xb8\x96\xe7\x95\x8c"
    "\xe7\x9a\x84\xe5\x8f\xa5\xe5\xad\x90\xe3\x80\x82\xe5\xa4\xa7\xe5\x9e\x8b"
    "\xe8\xaf\xad\xe8\xa8\x80\xe6\xa8\xa1\xe5\x9e\x8b\xe9\x9c\x80\xe8\xa6\x81"
    "\xe5\xa4\xa7\xe9\x87\x8f\xe7\x9a\x84\xe6\x96\x87\xe6\x9c\xac\xe6\x95\xb0"
    "\xe6\x8d\xae\xe3\x80\x82\xe5\xad\xa9\xe5\xad\x90\xe4\xbb\xac\xe5\x9c\xa8"
    "\xe5\xad\xa6\xe6\xa0\xa1\xe5\xad\xa6\xe4\xb9\xa0\xe6\x95\xb0\xe5\xad\xa6"
    "\xe5\x92\x8c\xe8\xaf\xad\xe6\x96\x87\xe3\x80\x82\xe8\xaf\xb7\xe4\xbb\x94"
    "\xe7\xbb\x86\xe9\x98\x85\xe8\xaf\xbb\xe4\xb8\x8b\xe9\x9d\xa2\xe7\x9a\x84"
    "\xe8\xaf\xb4\xe6\x98\x8e\xe3\x80\x82\xe5\xae\x9e\xe9\xaa\x8c\xe7\xbb\x93"
    "\xe6\x9e\x9c\xe9\x9d\x9e\xe5\xb8\xb8\xe6\x9c\x89\xe8\xb6\xa3\xe3\x80\x82";

double CjkRatio(std::string_view s) {
  size_t pos = 0, total = 0, cjk = 0;
  uint32_t cp;
  while (pos < s.size()) {
    DecodeUtf8(s, &pos, &cp);
    if (IsWhitespaceCp(cp)) continue;
    ++total;
    if (IsCjk(cp)) ++cjk;
  }
  return total == 0 ? 0.0 : static_cast<double>(cjk) /
                                static_cast<double>(total);
}

}  // namespace

LanguageIdentifier::LanguageIdentifier() = default;

void LanguageIdentifier::AddProfile(const std::string& lang,
                                    std::string_view seed_text) {
  Profile* profile = nullptr;
  for (auto& [name, p] : profiles_) {
    if (name == lang) {
      profile = &p;
      break;
    }
  }
  if (profile == nullptr) {
    profiles_.emplace_back(lang, Profile{});
    profile = &profiles_.back().second;
  }
  std::string lower = AsciiToLower(seed_text);
  std::unordered_map<uint64_t, double> counts;
  double total = 0;
  for (uint64_t h : HashedCharNgrams(lower, 3)) {
    counts[h] += 1;
    total += 1;
  }
  // Laplace-smoothed log probabilities; unseen grams get a fallback below
  // the rarest seen gram.
  double denom = total + static_cast<double>(counts.size()) + 1.0;
  for (const auto& [h, c] : counts) {
    profile->log_prob[h] = std::log((c + 1.0) / denom);
  }
  profile->fallback_log_prob = std::log(1.0 / denom) - 1.0;
  profile->cjk_expectation = CjkRatio(seed_text);
}

const LanguageIdentifier& LanguageIdentifier::Default() {
  static const LanguageIdentifier* instance = [] {
    auto* id = new LanguageIdentifier();
    id->AddProfile("en", kSeedEn);
    id->AddProfile("de", kSeedDe);
    id->AddProfile("fr", kSeedFr);
    id->AddProfile("es", kSeedEs);
    id->AddProfile("zh", kSeedZh);
    return id;
  }();
  return *instance;
}

std::vector<std::pair<std::string, double>> LanguageIdentifier::ScoresFor(
    std::string_view s) const {
  std::vector<std::pair<std::string, double>> scores;
  if (profiles_.empty()) return scores;
  std::string lower = AsciiToLower(s);
  std::vector<uint64_t> grams = HashedCharNgrams(lower, 3);
  double cjk = CjkRatio(s);
  for (const auto& [lang, profile] : profiles_) {
    double logp = 0;
    if (!grams.empty()) {
      for (uint64_t h : grams) {
        auto it = profile.log_prob.find(h);
        logp += it != profile.log_prob.end() ? it->second
                                             : profile.fallback_log_prob;
      }
      logp /= static_cast<double>(grams.size());
    } else {
      logp = profile.fallback_log_prob;
    }
    // CJK-ratio prior: quadratic penalty for mismatch between the observed
    // CJK density and the language's expectation. Weighted strongly enough
    // to dominate on clearly CJK or clearly Latin text.
    double mismatch = cjk - profile.cjk_expectation;
    logp -= 6.0 * mismatch * mismatch;
    scores.emplace_back(lang, logp);
  }
  return scores;
}

LangScore LanguageIdentifier::Identify(std::string_view s) const {
  auto scores = ScoresFor(s);
  if (scores.empty()) return {"und", 0.0};
  double max_logp = scores[0].second;
  for (const auto& [lang, logp] : scores) max_logp = std::max(max_logp, logp);
  double z = 0;
  for (auto& [lang, logp] : scores) {
    logp = std::exp((logp - max_logp) * 3.0);  // temperature sharpening
    z += logp;
  }
  auto best = std::max_element(
      scores.begin(), scores.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return {best->first, best->second / z};
}

double LanguageIdentifier::Score(std::string_view s,
                                 std::string_view lang) const {
  auto scores = ScoresFor(s);
  if (scores.empty()) return 0.0;
  double max_logp = scores[0].second;
  for (const auto& [l, logp] : scores) max_logp = std::max(max_logp, logp);
  double z = 0;
  double target = -1;
  for (const auto& [l, logp] : scores) {
    double e = std::exp((logp - max_logp) * 3.0);
    z += e;
    if (l == lang) target = e;
  }
  if (target < 0) return 0.0;
  return target / z;
}

std::vector<std::string> LanguageIdentifier::Languages() const {
  std::vector<std::string> out;
  for (const auto& [lang, profile] : profiles_) out.push_back(lang);
  return out;
}

}  // namespace dj::text
