#ifndef DJ_TEXT_UTF8_H_
#define DJ_TEXT_UTF8_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dj::text {

/// Decodes the UTF-8 sequence starting at `s[pos]`. On success writes the
/// codepoint and advances `pos`; on malformed input writes U+FFFD, advances
/// by one byte, and returns false.
bool DecodeUtf8(std::string_view s, size_t* pos, uint32_t* codepoint);

/// Appends the UTF-8 encoding of `codepoint` to `out`.
void EncodeUtf8(uint32_t codepoint, std::string* out);

/// Number of codepoints in `s` (malformed bytes count as one each).
size_t CodepointCount(std::string_view s);

/// True if `s` is entirely well-formed UTF-8.
bool IsValidUtf8(std::string_view s);

/// Decodes all codepoints (malformed bytes become U+FFFD).
std::vector<uint32_t> DecodeAll(std::string_view s);

/// Codepoint class predicates used by OPs.
bool IsCjk(uint32_t cp);               ///< CJK unified ideographs + extensions.
bool IsAsciiAlnum(uint32_t cp);
bool IsAsciiAlpha(uint32_t cp);
bool IsAsciiDigit(uint32_t cp);
bool IsWhitespaceCp(uint32_t cp);      ///< ASCII whitespace + NBSP + ideographic.
bool IsPunctuationCp(uint32_t cp);     ///< ASCII punctuation + common unicode.
bool IsEmojiLike(uint32_t cp);         ///< Misc symbols / emoji blocks.

}  // namespace dj::text

#endif  // DJ_TEXT_UTF8_H_
