#ifndef DJ_TEXT_LANG_ID_H_
#define DJ_TEXT_LANG_ID_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dj::text {

/// Result of language identification.
struct LangScore {
  std::string lang;    ///< ISO-ish code: "en", "zh", "de", "fr", "es".
  double confidence;   ///< Softmax probability across known languages.
};

/// Character-trigram naive-Bayes language identifier with built-in profiles
/// (en/zh/de/fr/es) trained from embedded seed text, plus a CJK-ratio prior
/// that makes zh detection robust on short strings. Stands in for the
/// fasttext-based model of the language_id_score filter.
class LanguageIdentifier {
 public:
  /// Shared instance with built-in profiles.
  static const LanguageIdentifier& Default();

  LanguageIdentifier();

  /// Adds or extends a language profile from sample text.
  void AddProfile(const std::string& lang, std::string_view seed_text);

  /// Best language and confidence for `s`. Empty input scores ("und", 0).
  LangScore Identify(std::string_view s) const;

  /// Confidence that `s` is in language `lang` (0 when unknown lang).
  double Score(std::string_view s, std::string_view lang) const;

  std::vector<std::string> Languages() const;

 private:
  struct Profile {
    std::unordered_map<uint64_t, double> log_prob;  // trigram hash -> logp
    double fallback_log_prob = -12.0;
    double cjk_expectation = 0.0;  // expected CJK codepoint ratio
  };

  std::vector<std::pair<std::string, Profile>> profiles_;

  std::vector<std::pair<std::string, double>> ScoresFor(
      std::string_view s) const;
};

}  // namespace dj::text

#endif  // DJ_TEXT_LANG_ID_H_
