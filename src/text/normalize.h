#ifndef DJ_TEXT_NORMALIZE_H_
#define DJ_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace dj::text {

/// Collapses runs of spaces/tabs into one space, trims line ends, collapses
/// 3+ consecutive newlines into two, trims leading/trailing whitespace.
std::string NormalizeWhitespace(std::string_view s);

/// Maps common unicode punctuation to ASCII equivalents: curly quotes to
/// straight quotes, en/em dashes to '-', ellipsis to "...", fullwidth ASCII
/// to halfwidth, NBSP to space.
std::string NormalizePunctuation(std::string_view s);

/// Repairs mojibake-style artifacts ("messy code rectification"): drops
/// replacement chars and control chars (keeping \n and \t), fixes the common
/// UTF-8-read-as-Latin-1 sequences for quotes and dashes, strips BOM and
/// zero-width characters.
std::string FixUnicode(std::string_view s);

/// Removes every occurrence of the characters in `chars` (a UTF-8 string
/// treated as a set of codepoints).
std::string RemoveChars(std::string_view s, std::string_view chars);

}  // namespace dj::text

#endif  // DJ_TEXT_NORMALIZE_H_
