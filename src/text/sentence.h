#ifndef DJ_TEXT_SENTENCE_H_
#define DJ_TEXT_SENTENCE_H_

#include <string>
#include <string_view>
#include <vector>

namespace dj::text {

/// Rule-based sentence splitter: breaks on ./!/? and CJK 。！？ followed by
/// whitespace/uppercase/end, with guards for common abbreviations ("Dr.",
/// "e.g.", "Fig.") and decimal numbers. Newlines that end a paragraph also
/// split. Pieces are trimmed; empty pieces dropped.
std::vector<std::string> SplitSentences(std::string_view s);

/// Splits on blank lines into paragraphs (trimmed, empties dropped).
std::vector<std::string> SplitParagraphs(std::string_view s);

}  // namespace dj::text

#endif  // DJ_TEXT_SENTENCE_H_
