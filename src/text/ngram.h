#ifndef DJ_TEXT_NGRAM_H_
#define DJ_TEXT_NGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dj::text {

/// Word n-grams joined with '\x1f' separators, from pre-tokenized words.
std::vector<std::string> WordNgrams(const std::vector<std::string>& words,
                                    size_t n);

/// Character n-grams over codepoints (each gram is a UTF-8 substring).
std::vector<std::string> CharNgrams(std::string_view s, size_t n);

/// 64-bit hashes of word n-grams (cheaper than materializing strings; used
/// by MinHash/SimHash and repetition filters).
std::vector<uint64_t> HashedWordNgrams(const std::vector<std::string>& words,
                                       size_t n);

/// 64-bit hashes of character n-grams over raw bytes (windowed), used by the
/// character-repetition filter; ASCII-oriented but stable for any input.
std::vector<uint64_t> HashedCharNgrams(std::string_view s, size_t n);

/// Fraction of duplicated n-grams: 1 - unique/total (0 when fewer than one
/// gram). This is the repetition ratio the paper's repetition filters use.
double DuplicateNgramRatio(const std::vector<uint64_t>& gram_hashes);

/// Jaccard similarity between two hashed n-gram sets.
double JaccardSimilarity(std::vector<uint64_t> a, std::vector<uint64_t> b);

}  // namespace dj::text

#endif  // DJ_TEXT_NGRAM_H_
