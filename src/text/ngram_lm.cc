#include "text/ngram_lm.h"

#include <algorithm>
#include <cstring>
#include <cmath>

#include "common/hash.h"
#include "text/tokenizer.h"

namespace dj::text {
namespace {

constexpr uint64_t kBosHash = 0xb05eb05eb05eb05eULL;

uint64_t WordHash(std::string_view w) { return Fnv1a64(w); }

/// Combined hash of an (order-1)-word context ending right before position i.
uint64_t ContextHash(const std::vector<uint64_t>& hashes, size_t i,
                     int context_len) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(context_len);
  for (int k = context_len; k >= 1; --k) {
    uint64_t wh = (i >= static_cast<size_t>(k)) ? hashes[i - k] : kBosHash;
    h = HashCombine(h, wh);
  }
  return h;
}

}  // namespace

NgramLm::NgramLm() : NgramLm(Options()) {}

NgramLm::NgramLm(Options options) : options_(options) {
  if (options_.order < 1) options_.order = 1;
  if (options_.order > 5) options_.order = 5;
  ngram_counts_.resize(options_.order);
  context_counts_.resize(options_.order);
}

void NgramLm::AddDocument(std::string_view text) {
  AddTokens(TokenizeWordsLower(text));
}

void NgramLm::AddTokens(const std::vector<std::string>& words) {
  if (words.empty()) return;
  std::vector<uint64_t> hashes(words.size());
  for (size_t i = 0; i < words.size(); ++i) hashes[i] = WordHash(words[i]);
  total_tokens_ += words.size();
  for (size_t i = 0; i < hashes.size(); ++i) {
    unigram_counts_[hashes[i]] += 1;
    for (int order = 2; order <= options_.order; ++order) {
      uint64_t ctx = ContextHash(hashes, i, order - 1);
      context_counts_[order - 1][ctx] += 1;
      ngram_counts_[order - 1][HashCombine(ctx, hashes[i])] += 1;
    }
  }
  finalized_ = false;
}

void NgramLm::Finalize() { finalized_ = true; }

double NgramLm::Log10Prob(const std::vector<uint64_t>& context_hashes,
                          uint64_t word_hash) const {
  // An untrained model knows nothing: everything is at the unknown floor.
  if (total_tokens_ == 0) return options_.unk_log10_prob;
  // Base case: smoothed unigram.
  double p;
  {
    auto it = unigram_counts_.find(word_hash);
    double c = it == unigram_counts_.end() ? 0.0
                                           : static_cast<double>(it->second);
    double v = static_cast<double>(unigram_counts_.size()) + 1.0;
    double denom = static_cast<double>(total_tokens_) + v;
    p = (c + 1.0) / std::max(denom, 1.0);
  }
  // Interpolate higher orders: p_n = lambda * ml_n + (1-lambda) * p_{n-1}.
  size_t n_ctx = context_hashes.size();
  for (int order = 2; order <= options_.order; ++order) {
    int context_len = order - 1;
    if (n_ctx < static_cast<size_t>(context_len)) break;
    uint64_t ctx = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(context_len);
    for (int k = context_len; k >= 1; --k) {
      ctx = HashCombine(ctx, context_hashes[n_ctx - k]);
    }
    auto cit = context_counts_[order - 1].find(ctx);
    if (cit == context_counts_[order - 1].end() || cit->second == 0) {
      // Unseen context: interpolation passes the lower-order estimate up.
      continue;
    }
    auto nit = ngram_counts_[order - 1].find(HashCombine(ctx, word_hash));
    double ml = nit == ngram_counts_[order - 1].end()
                    ? 0.0
                    : static_cast<double>(nit->second) /
                          static_cast<double>(cit->second);
    p = options_.lambda * ml + (1.0 - options_.lambda) * p;
  }
  double log10p = std::log10(std::max(p, 1e-12));
  return std::max(log10p, options_.unk_log10_prob);
}

double NgramLm::AvgLog10Prob(std::string_view text) const {
  std::vector<std::string> words = TokenizeWordsLower(text);
  if (words.empty()) return options_.unk_log10_prob;
  std::vector<uint64_t> hashes(words.size());
  for (size_t i = 0; i < words.size(); ++i) hashes[i] = WordHash(words[i]);
  double total = 0;
  std::vector<uint64_t> context;
  context.reserve(options_.order);
  for (size_t i = 0; i < hashes.size(); ++i) {
    // Build the context slice ending at i (BOS-padded implicitly by using
    // fewer context words at document start).
    size_t ctx_begin = i >= static_cast<size_t>(options_.order - 1)
                           ? i - (options_.order - 1)
                           : 0;
    context.assign(hashes.begin() + ctx_begin, hashes.begin() + i);
    total += Log10Prob(context, hashes[i]);
  }
  return total / static_cast<double>(hashes.size());
}

double NgramLm::Perplexity(std::string_view text) const {
  std::vector<std::string> words = TokenizeWordsLower(text);
  if (words.empty()) return 1e6;
  return std::pow(10.0, -AvgLog10Prob(text));
}

namespace {

constexpr char kLmMagic[4] = {'D', 'J', 'L', 'M'};

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view bytes, size_t* pos, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < bytes.size() && shift <= 63) {
    uint8_t b = static_cast<uint8_t>(bytes[*pos]);
    ++*pos;
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

void PutCountMap(const std::unordered_map<uint64_t, uint32_t>& map,
                 std::string* out) {
  PutVarint(map.size(), out);
  for (const auto& [key, count] : map) {
    PutVarint(key, out);
    PutVarint(count, out);
  }
}

bool GetCountMap(std::string_view bytes, size_t* pos,
                 std::unordered_map<uint64_t, uint32_t>* map) {
  uint64_t n = 0;
  if (!GetVarint(bytes, pos, &n)) return false;
  map->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = 0, count = 0;
    if (!GetVarint(bytes, pos, &key) || !GetVarint(bytes, pos, &count)) {
      return false;
    }
    (*map)[key] = static_cast<uint32_t>(count);
  }
  return true;
}

}  // namespace

std::string NgramLm::Serialize() const {
  std::string out;
  out.append(kLmMagic, 4);
  PutVarint(static_cast<uint64_t>(options_.order), &out);
  // Interpolation weight with three decimals of fidelity.
  PutVarint(static_cast<uint64_t>(options_.lambda * 1000.0 + 0.5), &out);
  PutVarint(static_cast<uint64_t>(-options_.unk_log10_prob * 1000.0 + 0.5),
            &out);
  PutVarint(total_tokens_, &out);
  PutCountMap(unigram_counts_, &out);
  for (int order = 2; order <= options_.order; ++order) {
    PutCountMap(context_counts_[order - 1], &out);
    PutCountMap(ngram_counts_[order - 1], &out);
  }
  return out;
}

Result<NgramLm> NgramLm::Deserialize(std::string_view bytes) {
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kLmMagic, 4) != 0) {
    return Status::Corruption("not a DJLM model blob");
  }
  size_t pos = 4;
  uint64_t order = 0, lambda_milli = 0, unk_milli = 0, total = 0;
  if (!GetVarint(bytes, &pos, &order) ||
      !GetVarint(bytes, &pos, &lambda_milli) ||
      !GetVarint(bytes, &pos, &unk_milli) ||
      !GetVarint(bytes, &pos, &total) || order < 1 || order > 5) {
    return Status::Corruption("truncated DJLM header");
  }
  Options options;
  options.order = static_cast<int>(order);
  options.lambda = static_cast<double>(lambda_milli) / 1000.0;
  options.unk_log10_prob = -static_cast<double>(unk_milli) / 1000.0;
  NgramLm lm(options);
  lm.total_tokens_ = total;
  if (!GetCountMap(bytes, &pos, &lm.unigram_counts_)) {
    return Status::Corruption("truncated DJLM unigrams");
  }
  for (int o = 2; o <= options.order; ++o) {
    if (!GetCountMap(bytes, &pos, &lm.context_counts_[o - 1]) ||
        !GetCountMap(bytes, &pos, &lm.ngram_counts_[o - 1])) {
      return Status::Corruption("truncated DJLM n-gram tables");
    }
  }
  if (pos != bytes.size()) {
    return Status::Corruption("trailing bytes in DJLM blob");
  }
  lm.Finalize();
  return lm;
}

const NgramLm& NgramLm::DefaultEnglish() {
  static const NgramLm* lm = [] {
    auto* model = new NgramLm();
    // Seed corpus: plain English covering frequent constructions; enough for
    // the perplexity filter to separate fluent text from noise.
    static constexpr std::string_view kSeed[] = {
        "the quick brown fox jumps over the lazy dog",
        "this is a simple sentence about everyday life and common things",
        "we describe how the system works and why the design matters",
        "language models are trained on large collections of text data",
        "the results of the experiment were interesting and easy to explain",
        "please read the following instructions carefully before you begin",
        "she said that he would come to the meeting tomorrow with a report",
        "people around the world use computers to work and to communicate",
        "the weather today is nice and the children are playing outside",
        "a good data processing pipeline removes noise and keeps quality",
        "in this paper we present a new method for cleaning web documents",
        "the model learns to predict the next word given the previous words",
        "many open source projects release both code and documentation",
        "it is important to measure quality diversity and volume of data",
        "the team collected a large corpus from books articles and websites",
    };
    for (std::string_view doc : kSeed) model->AddDocument(doc);
    model->Finalize();
    return model;
  }();
  return *lm;
}

}  // namespace dj::text
