#ifndef DJ_QUALITY_HASHING_TF_H_
#define DJ_QUALITY_HASHING_TF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dj::quality {

/// Sparse feature vector: parallel (index, value) arrays sorted by index.
struct SparseVector {
  std::vector<uint32_t> indices;
  std::vector<float> values;

  size_t nnz() const { return indices.size(); }
};

/// Hashing term-frequency featurizer, mirroring PySpark's HashingTF used by
/// the paper's GPT-3 quality classifier (Appendix B.1): tokens are hashed
/// into a fixed-dimensional bucket space and counted, then L2-normalized.
class HashingTf {
 public:
  explicit HashingTf(uint32_t num_features = 1u << 18);

  uint32_t num_features() const { return num_features_; }

  /// Featurizes pre-tokenized input.
  SparseVector Transform(const std::vector<std::string>& tokens) const;

  /// Tokenizes with the "standard tokenizer" (whitespace split, lowercase)
  /// and featurizes.
  SparseVector TransformText(std::string_view text) const;

 private:
  uint32_t num_features_;
};

}  // namespace dj::quality

#endif  // DJ_QUALITY_HASHING_TF_H_
