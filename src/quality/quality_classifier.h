#ifndef DJ_QUALITY_QUALITY_CLASSIFIER_H_
#define DJ_QUALITY_QUALITY_CLASSIFIER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "quality/hashing_tf.h"
#include "quality/logistic_regression.h"

namespace dj::quality {

/// Keep rules of the GPT-3 quality pipeline (paper Appendix B.1):
///   kLabel:  keep when doc_score > 0.5
///   kPareto: keep when doc_score > 1 - pareto(alpha=9) — the stochastic
///            rule GPT-3 used to admit some low-scoring documents.
enum class KeepMethod { kLabel, kPareto };

/// Evaluation metrics for a trained classifier (paper Table 4).
struct ClassifierMetrics {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  size_t num_eval = 0;
};

/// Reproduction of the GPT-3 quality classifier: standard tokenizer +
/// HashingTF features + binary logistic regression (paper Sec. 6.2 and
/// Appendix B.1). Train on positive (wiki/books-like) vs negative
/// (crawl-like) corpora, then score arbitrary text in [0,1].
class QualityClassifier {
 public:
  struct Options {
    uint32_t num_features = 1u << 18;
    int epochs = 12;
    double pareto_alpha = 9.0;
    uint64_t seed = 42;
  };

  QualityClassifier();
  explicit QualityClassifier(Options options);

  /// Trains on labeled corpora (1 = high quality / positive).
  void Train(const std::vector<std::string>& positives,
             const std::vector<std::string>& negatives);

  bool trained() const { return model_.trained(); }

  /// Quality score in [0,1] (probability of the positive class).
  double Score(std::string_view text) const;

  /// Applies a keep rule to a score. The pareto rule consumes randomness
  /// from `rng` (pass a seeded Rng for reproducibility).
  bool Keep(double score, KeepMethod method, Rng* rng) const;

  /// Precision/recall/F1 on a labeled evaluation set.
  ClassifierMetrics Evaluate(const std::vector<std::string>& texts,
                             const std::vector<int>& labels) const;

  /// Shared classifier trained on embedded seed corpora; default auxiliary
  /// model for the quality_score filter.
  static const QualityClassifier& DefaultGpt3();

  /// Binary checkpoint codec (magic "DJQC"): sparse non-zero weights +
  /// bias, so trained classifiers can ship with data recipes.
  std::string Serialize() const;
  static Result<QualityClassifier> Deserialize(std::string_view bytes);

 private:
  Options options_;
  HashingTf featurizer_;
  LogisticRegression model_;
};

}  // namespace dj::quality

#endif  // DJ_QUALITY_QUALITY_CLASSIFIER_H_
