#include "quality/hashing_tf.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/hash.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace dj::quality {

HashingTf::HashingTf(uint32_t num_features) : num_features_(num_features) {
  if (num_features_ == 0) num_features_ = 1;
}

SparseVector HashingTf::Transform(
    const std::vector<std::string>& tokens) const {
  std::unordered_map<uint32_t, float> counts;
  counts.reserve(tokens.size());
  for (const std::string& token : tokens) {
    uint32_t bucket =
        static_cast<uint32_t>(Fnv1a64(token) % num_features_);
    counts[bucket] += 1.0f;
  }
  SparseVector out;
  out.indices.reserve(counts.size());
  for (const auto& [idx, value] : counts) out.indices.push_back(idx);
  std::sort(out.indices.begin(), out.indices.end());
  out.values.reserve(counts.size());
  double norm_sq = 0;
  for (uint32_t idx : out.indices) {
    float v = counts[idx];
    out.values.push_back(v);
    norm_sq += static_cast<double>(v) * v;
  }
  // L2 normalization keeps long documents comparable to short ones.
  if (norm_sq > 0) {
    float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (float& v : out.values) v *= inv;
  }
  return out;
}

SparseVector HashingTf::TransformText(std::string_view text) const {
  std::vector<std::string> tokens = text::TokenizeWhitespace(text);
  for (std::string& t : tokens) t = AsciiToLower(t);
  return Transform(tokens);
}

}  // namespace dj::quality
