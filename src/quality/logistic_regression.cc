#include "quality/logistic_regression.h"

#include <cmath>
#include <numeric>

namespace dj::quality {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LogisticRegression::LogisticRegression() : LogisticRegression(Options()) {}

LogisticRegression::LogisticRegression(Options options)
    : options_(options), weights_(options_.num_features, 0.0f) {}

double LogisticRegression::Margin(const SparseVector& x) const {
  double z = bias_;
  for (size_t i = 0; i < x.indices.size(); ++i) {
    z += static_cast<double>(weights_[x.indices[i]]) * x.values[i];
  }
  return z;
}

void LogisticRegression::Train(const std::vector<SparseVector>& features,
                               const std::vector<int>& labels) {
  const size_t n = features.size();
  if (n == 0 || labels.size() != n) return;
  Rng rng(options_.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  double lr = options_.learning_rate;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const SparseVector& x = features[idx];
      double y = labels[idx] > 0 ? 1.0 : 0.0;
      double p = Sigmoid(Margin(x));
      double g = p - y;  // gradient of log-loss w.r.t. margin
      bias_ -= lr * g;
      for (size_t i = 0; i < x.indices.size(); ++i) {
        float& w = weights_[x.indices[i]];
        w -= static_cast<float>(
            lr * (g * x.values[i] + options_.l2 * w));
      }
    }
    lr *= 0.85;  // simple decay schedule
  }
  trained_ = true;
}

double LogisticRegression::Predict(const SparseVector& x) const {
  return Sigmoid(Margin(x));
}

}  // namespace dj::quality
