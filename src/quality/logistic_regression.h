#ifndef DJ_QUALITY_LOGISTIC_REGRESSION_H_
#define DJ_QUALITY_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "quality/hashing_tf.h"

namespace dj::quality {

/// Binary logistic regression over sparse features, trained with mini-batch
/// SGD + L2 regularization. Stands in for PySpark MLlib's classifier in the
/// GPT-3 quality scorer reproduction (paper Appendix B.1).
class LogisticRegression {
 public:
  struct Options {
    uint32_t num_features = 1u << 18;
    int epochs = 12;
    double learning_rate = 0.5;
    double l2 = 1e-6;
    uint64_t seed = 42;
  };

  LogisticRegression();
  explicit LogisticRegression(Options options);

  /// Trains on (features, label) pairs; labels are 0/1. Examples are
  /// shuffled per epoch with the seeded RNG, so training is deterministic.
  void Train(const std::vector<SparseVector>& features,
             const std::vector<int>& labels);

  /// P(label=1 | x).
  double Predict(const SparseVector& x) const;

  /// Decision with 0.5 threshold.
  int Classify(const SparseVector& x) const {
    return Predict(x) >= 0.5 ? 1 : 0;
  }

  bool trained() const { return trained_; }
  const std::vector<float>& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// Installs externally-restored parameters (checkpoint loading). The
  /// weight vector must match num_features.
  void SetParameters(std::vector<float> weights, double bias) {
    weights_ = std::move(weights);
    bias_ = bias;
    trained_ = true;
  }

 private:
  double Margin(const SparseVector& x) const;

  Options options_;
  std::vector<float> weights_;
  double bias_ = 0;
  bool trained_ = false;
};

}  // namespace dj::quality

#endif  // DJ_QUALITY_LOGISTIC_REGRESSION_H_
