#include "quality/quality_classifier.h"

#include <cmath>
#include <cstring>

namespace dj::quality {
namespace {

constexpr char kQcMagic[4] = {'D', 'J', 'Q', 'C'};

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view bytes, size_t* pos, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < bytes.size() && shift <= 63) {
    uint8_t b = static_cast<uint8_t>(bytes[*pos]);
    ++*pos;
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

void PutFloat(float f, std::string* out) {
  uint32_t bits;
  std::memcpy(&bits, &f, 4);
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

bool GetFloat(std::string_view bytes, size_t* pos, float* out) {
  if (*pos + 4 > bytes.size()) return false;
  uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    bits |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[*pos + i]))
            << (8 * i);
  }
  *pos += 4;
  std::memcpy(out, &bits, 4);
  return true;
}

}  // namespace

QualityClassifier::QualityClassifier() : QualityClassifier(Options()) {}

QualityClassifier::QualityClassifier(Options options)
    : options_(options),
      featurizer_(options_.num_features),
      model_(LogisticRegression::Options{options_.num_features,
                                         options_.epochs,
                                         /*learning_rate=*/0.5,
                                         /*l2=*/1e-6, options_.seed}) {}

void QualityClassifier::Train(const std::vector<std::string>& positives,
                              const std::vector<std::string>& negatives) {
  std::vector<SparseVector> features;
  std::vector<int> labels;
  features.reserve(positives.size() + negatives.size());
  labels.reserve(positives.size() + negatives.size());
  for (const std::string& doc : positives) {
    features.push_back(featurizer_.TransformText(doc));
    labels.push_back(1);
  }
  for (const std::string& doc : negatives) {
    features.push_back(featurizer_.TransformText(doc));
    labels.push_back(0);
  }
  model_.Train(features, labels);
}

double QualityClassifier::Score(std::string_view text) const {
  return model_.Predict(featurizer_.TransformText(text));
}

bool QualityClassifier::Keep(double score, KeepMethod method,
                             Rng* rng) const {
  switch (method) {
    case KeepMethod::kLabel:
      return score > 0.5;
    case KeepMethod::kPareto:
      return score > 1.0 - rng->Pareto(options_.pareto_alpha);
  }
  return false;
}

ClassifierMetrics QualityClassifier::Evaluate(
    const std::vector<std::string>& texts,
    const std::vector<int>& labels) const {
  ClassifierMetrics m;
  m.num_eval = texts.size();
  size_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < texts.size(); ++i) {
    int pred = Score(texts[i]) > 0.5 ? 1 : 0;
    int truth = labels[i] > 0 ? 1 : 0;
    if (pred == 1 && truth == 1) ++tp;
    if (pred == 1 && truth == 0) ++fp;
    if (pred == 0 && truth == 1) ++fn;
  }
  m.precision = tp + fp == 0 ? 0 : static_cast<double>(tp) / (tp + fp);
  m.recall = tp + fn == 0 ? 0 : static_cast<double>(tp) / (tp + fn);
  m.f1 = m.precision + m.recall == 0
             ? 0
             : 2 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

std::string QualityClassifier::Serialize() const {
  std::string out;
  out.append(kQcMagic, 4);
  PutVarint(options_.num_features, &out);
  PutVarint(static_cast<uint64_t>(options_.pareto_alpha * 1000.0 + 0.5),
            &out);
  PutFloat(static_cast<float>(model_.bias()), &out);
  const std::vector<float>& weights = model_.weights();
  uint64_t nonzero = 0;
  for (float w : weights) {
    if (w != 0.0f) ++nonzero;
  }
  PutVarint(nonzero, &out);
  for (uint32_t i = 0; i < weights.size(); ++i) {
    if (weights[i] == 0.0f) continue;
    PutVarint(i, &out);
    PutFloat(weights[i], &out);
  }
  return out;
}

Result<QualityClassifier> QualityClassifier::Deserialize(
    std::string_view bytes) {
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kQcMagic, 4) != 0) {
    return Status::Corruption("not a DJQC classifier blob");
  }
  size_t pos = 4;
  uint64_t num_features = 0, alpha_milli = 0;
  float bias = 0;
  if (!GetVarint(bytes, &pos, &num_features) ||
      !GetVarint(bytes, &pos, &alpha_milli) ||
      !GetFloat(bytes, &pos, &bias) || num_features == 0 ||
      num_features > (1u << 26)) {
    return Status::Corruption("truncated DJQC header");
  }
  Options options;
  options.num_features = static_cast<uint32_t>(num_features);
  options.pareto_alpha = static_cast<double>(alpha_milli) / 1000.0;
  QualityClassifier classifier(options);
  std::vector<float> weights(num_features, 0.0f);
  uint64_t nonzero = 0;
  if (!GetVarint(bytes, &pos, &nonzero)) {
    return Status::Corruption("truncated DJQC weight count");
  }
  for (uint64_t i = 0; i < nonzero; ++i) {
    uint64_t index = 0;
    float value = 0;
    if (!GetVarint(bytes, &pos, &index) || !GetFloat(bytes, &pos, &value) ||
        index >= num_features) {
      return Status::Corruption("truncated DJQC weights");
    }
    weights[index] = value;
  }
  if (pos != bytes.size()) {
    return Status::Corruption("trailing bytes in DJQC blob");
  }
  classifier.model_.SetParameters(std::move(weights), bias);
  return classifier;
}

const QualityClassifier& QualityClassifier::DefaultGpt3() {
  static const QualityClassifier* instance = [] {
    auto* c = new QualityClassifier();
    // Embedded seed corpora: encyclopedic prose (positive) vs low-quality
    // crawl artifacts (negative). The real classifier trains on
    // Wikipedia/books vs CommonCrawl; the vocabulary contrast is the same.
    std::vector<std::string> positives = {
        "The history of mathematics deals with the origin of discoveries in "
        "mathematics and the mathematical methods of the past.",
        "Photosynthesis is the process by which green plants convert light "
        "energy into chemical energy stored in glucose molecules.",
        "The novel follows the life of a young woman as she navigates the "
        "social conventions of nineteenth century England.",
        "In computer science, a distributed system is a collection of "
        "independent computers that appears to its users as a single "
        "coherent system.",
        "The committee published a detailed report describing the economic "
        "effects of the policy on rural communities.",
        "Astronomers observed the distant galaxy using a network of radio "
        "telescopes located across three continents.",
        "The treaty was signed in the autumn of that year, establishing a "
        "framework for cooperation between the two nations.",
        "Researchers demonstrated that the new vaccine produced a strong "
        "immune response in clinical trials involving thousands of "
        "participants.",
    };
    std::vector<std::string> negatives = {
        "click here buy now best price viagra casino jackpot win big money "
        "fast guaranteed",
        "home | about | contact | sitemap | login | register | privacy "
        "policy | terms",
        "asdkjh qwelkj zxcmnb poiuyt lkjhgf mnbvcx qazwsx edcrfv tgbyhn",
        "FREE FREE FREE limited offer act now !!! click click click "
        "subscribe subscribe",
        "lorem ipsum dolor sit amet consectetur adipiscing elit sed do "
        "eiusmod tempor",
        "404 not found error page does not exist redirect javascript "
        "enabled cookies",
        "hot singles in your area click to chat now adult content warning "
        "enter exit",
        "cheap replica watches discount pills weight loss fast miracle cure "
        "work from home",
    };
    c->Train(positives, negatives);
    return c;
  }();
  return *instance;
}

}  // namespace dj::quality
