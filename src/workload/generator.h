#ifndef DJ_WORKLOAD_GENERATOR_H_
#define DJ_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"

namespace dj::workload {

/// Corpus styles mirroring the sources the paper processes. Each style has
/// the failure modes the corresponding real corpus has — duplicated
/// boilerplate on web pages, LaTeX preambles and bibliographies on arXiv,
/// spam on raw crawls — so recipes and benches exercise the same OPs.
enum class Style {
  kWiki,           ///< clean encyclopedic prose (positive class for quality)
  kBooks,          ///< long-form narrative text
  kArxiv,          ///< LaTeX papers: preamble, sections, tables, bibliography
  kStackExchange,  ///< Q&A threads with inline code and quotes
  kCode,           ///< source files with comments and license headers
  kWeb,            ///< mixed-quality web pages (some HTML remnants)
  kCrawl,          ///< raw crawl: spam, boilerplate, duplication, mojibake
  kChinese,        ///< Chinese prose
};

const char* StyleName(Style style);

/// Generation knobs. Rates are per-document probabilities.
struct CorpusOptions {
  Style style = Style::kWeb;
  size_t num_docs = 1000;
  size_t mean_words = 180;      ///< target words per document
  uint64_t seed = 7;

  double exact_dup_rate = 0.0;  ///< emit an exact copy of a previous doc
  double near_dup_rate = 0.0;   ///< emit a lightly perturbed copy
  double boilerplate_rate = 0.0;///< inject the shared nav/footer paragraph
  double spam_rate = 0.0;       ///< inject flagged-word spam lines
  double noise_rate = 0.0;      ///< inject mojibake/control chars/long tokens
  double foreign_rate = 0.0;    ///< emit a non-English (German-like) doc
  double short_doc_rate = 0.0;  ///< emit a tiny (<10 word) doc
};

/// Deterministic synthetic corpus generator.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusOptions options);

  /// Generates the full dataset: "text" plus "meta.source" (style name),
  /// "meta.doc_id", and for kCode "meta.language"/"meta.stars".
  data::Dataset Generate();

  /// Generates one clean document of the configured style.
  std::string GenerateDocument(Rng* rng) const;

  /// One grammatical English sentence from the word banks.
  static std::string CleanSentence(Rng* rng);

  /// A paragraph of `sentences` clean sentences.
  static std::string CleanParagraph(Rng* rng, size_t sentences);

  /// A spammy line dominated by flagged words.
  static std::string SpamLine(Rng* rng);

  /// The shared boilerplate paragraph (identical across all docs).
  static std::string BoilerplateParagraph();

 private:
  std::string DecorateWithNoise(std::string doc, Rng* rng) const;

  CorpusOptions options_;
};

/// Convenience: generates a corpus with `approx_tokens` total word tokens by
/// scaling num_docs (used by the pre-training benches where the x-axis is
/// the token budget).
data::Dataset GenerateCorpusWithTokens(Style style, uint64_t approx_tokens,
                                       uint64_t seed,
                                       const CorpusOptions* base = nullptr);

/// Post-tuning instruction data (Alpaca-style triplets). The sample text
/// field is an object: text.instruction / text.input / text.output; meta
/// carries dataset/usage/lang tags like the Alpaca-CoT collection.
struct InstructionOptions {
  size_t num_samples = 1000;
  uint64_t seed = 11;
  std::string dataset_name = "synthetic-sft";
  std::string usage = "SFT";      ///< "SFT" | "IFT" | "Preference" | "MRD"
  std::string lang = "EN";
  double low_quality_rate = 0.0;  ///< truncated/irrelevant responses
  double dup_rate = 0.0;          ///< duplicated instructions
};

data::Dataset GenerateInstructionDataset(const InstructionOptions& options);

/// One synthetic source file. High-quality code carries license headers,
/// comments, and varied identifiers; low-quality code is minified and
/// repetitive — the positive/negative split of the Code quality classifier
/// (paper Table 6: starred vs random TheStack samples).
std::string SyntheticCodeDocument(Rng* rng, size_t mean_words,
                                  bool high_quality);

}  // namespace dj::workload

#endif  // DJ_WORKLOAD_GENERATOR_H_
