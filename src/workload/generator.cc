#include "workload/generator.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace dj::workload {
namespace {

// Word banks. Subjects/verbs/objects/modifiers compose grammatical
// sentences; domain banks flavor each style's vocabulary.
constexpr std::string_view kSubjects[] = {
    "the researchers", "the committee",  "the system",     "the model",
    "the community",   "the government", "the author",     "the students",
    "the engineers",   "the company",    "the scientists", "the teacher",
    "the network",     "the library",    "the farmers",    "the museum",
    "the journalists", "the analysts",   "the villagers",  "the observers"};

constexpr std::string_view kVerbs[] = {
    "describe",  "analyze",   "present",  "evaluate", "develop",
    "propose",   "examine",   "discover", "report",   "summarize",
    "explain",   "compare",   "improve",  "measure",  "observe",
    "document",  "implement", "study",    "review",   "investigate"};

constexpr std::string_view kObjects[] = {
    "the experimental results", "a new method",        "the ancient city",
    "the economic policy",      "the training data",   "the climate record",
    "a detailed framework",     "the historical text", "the novel approach",
    "the public dataset",       "an efficient pipeline", "the rural region",
    "the chemical process",     "the annual report",   "a formal proof",
    "the musical tradition",    "the coastal ecosystem", "the voting system",
    "the software architecture", "the medical trial"};

constexpr std::string_view kModifiers[] = {
    "with great care",        "in the final chapter", "over several years",
    "across three continents", "during the experiment", "with strong evidence",
    "in a controlled setting", "for the first time",  "with limited resources",
    "under realistic conditions", "at an unprecedented scale",
    "through careful analysis", "in collaboration with partners",
    "despite early setbacks",  "according to the records"};

constexpr std::string_view kBookPhrases[] = {
    "It was a long and quiet morning when",
    "Nobody in the village remembered exactly how",
    "She had always believed that",
    "Years later he would recall the moment when",
    "The letter arrived on a cold afternoon and",
    "In the beginning there was only the sound of",
};

constexpr std::string_view kGermanSentences[] = {
    "die forscher beschreiben das neue verfahren mit grosser sorgfalt.",
    "das komitee bewertet die ergebnisse des experiments im bericht.",
    "die studenten untersuchen die historischen texte in der bibliothek.",
    "die regierung verbessert die wirtschaftspolitik in diesem jahr.",
    "das system verarbeitet die daten schnell und zuverlaessig.",
};

constexpr std::string_view kChineseSentences[] = {
    "\xe7\xa0\x94\xe7\xa9\xb6\xe4\xba\xba\xe5\x91\x98\xe4\xbb\x94\xe7\xbb\x86"
    "\xe5\x88\x86\xe6\x9e\x90\xe4\xba\x86\xe5\xae\x9e\xe9\xaa\x8c\xe7\xbb\x93"
    "\xe6\x9e\x9c\xe3\x80\x82",
    "\xe5\xa7\x94\xe5\x91\x98\xe4\xbc\x9a\xe5\x8f\x91\xe5\xb8\x83\xe4\xba\x86"
    "\xe5\xb9\xb4\xe5\xba\xa6\xe6\x8a\xa5\xe5\x91\x8a\xe3\x80\x82",
    "\xe5\xad\xa6\xe7\x94\x9f\xe4\xbb\xac\xe5\x9c\xa8\xe5\x9b\xbe\xe4\xb9\xa6"
    "\xe9\xa6\x86\xe5\xad\xa6\xe4\xb9\xa0\xe5\x8e\x86\xe5\x8f\xb2\xe3\x80\x82",
    "\xe6\x96\xb0\xe7\x9a\x84\xe6\x96\xb9\xe6\xb3\x95\xe6\x8f\x90\xe9\xab\x98"
    "\xe4\xba\x86\xe6\x95\xb0\xe6\x8d\xae\xe5\xa4\x84\xe7\x90\x86\xe7\x9a\x84"
    "\xe6\x95\x88\xe7\x8e\x87\xe3\x80\x82",
};

constexpr std::string_view kSpamWords[] = {
    "viagra", "casino", "jackpot", "lottery", "xxx",  "porn", "gambling",
    "pills",  "cialis", "clickbait", "nsfw", "adult", "betting"};

constexpr std::string_view kCodeIdentifiers[] = {
    "buffer", "index", "count", "result", "value", "node",  "table",
    "stream", "cache", "queue", "config", "batch", "token", "handle"};

template <size_t N>
std::string_view Pick(Rng* rng, const std::string_view (&bank)[N]) {
  return bank[rng->NextBelow(N)];
}

std::string Capitalize(std::string s) {
  if (!s.empty() && s[0] >= 'a' && s[0] <= 'z') {
    s[0] = static_cast<char>(s[0] - 32);
  }
  return s;
}

std::string ArxivDocument(Rng* rng, size_t mean_words) {
  std::string doc;
  doc += "\\documentclass{article}\n\\usepackage{amsmath}\n";
  doc += "\\title{On ";
  doc += Pick(rng, kObjects);
  doc += "}\n\\author{A. Author and B. Author}\n\\begin{document}\n";
  doc += "\\maketitle\n\\section{Introduction}\n";
  size_t words = 0;
  while (words < mean_words) {
    std::string para = CorpusGenerator::CleanParagraph(rng, 3);
    words += text::CountWords(para);
    doc += para;
    doc += "\n\n";
    if (rng->Bernoulli(0.2)) {
      doc += "% reviewer note: tighten this paragraph\n";
    }
    if (rng->Bernoulli(0.15)) {
      doc += "\\begin{tabular}{ll}\na & 1 \\\\\nb & 2 \\\\\n\\end{tabular}\n";
    }
    if (rng->Bernoulli(0.3)) {
      doc += "\\section{";
      doc += Capitalize(std::string(Pick(rng, kVerbs)));
      doc += "}\n";
    }
  }
  doc += "\\begin{thebibliography}{9}\n\\bibitem{a} A. Author. ";
  doc += "A prior paper. 2019.\n\\end{thebibliography}\n\\end{document}\n";
  return doc;
}

std::string StackExchangeDocument(Rng* rng, size_t mean_words) {
  std::string doc = "Q: How do I ";
  doc += Pick(rng, kVerbs);
  doc += " ";
  doc += Pick(rng, kObjects);
  doc += "?\n\n";
  doc += CorpusGenerator::CleanParagraph(rng, 2);
  doc += "\n\nA: ";
  size_t words = text::CountWords(doc);
  while (words < mean_words) {
    std::string para = CorpusGenerator::CleanParagraph(rng, 2);
    words += text::CountWords(para);
    doc += para;
    doc += "\n\n";
    if (rng->Bernoulli(0.4)) {
      doc += "    for (int ";
      doc += Pick(rng, kCodeIdentifiers);
      doc += " = 0; i < n; ++i) process(";
      doc += Pick(rng, kCodeIdentifiers);
      doc += ");\n\n";
    }
  }
  return doc;
}

std::string CodeDocument(Rng* rng, size_t mean_words, bool high_quality) {
  std::string doc;
  if (high_quality) {
    doc += "// Copyright 2023 The Synthetic Authors.\n";
    doc += "// Licensed under the Apache License, Version 2.0.\n\n";
  }
  size_t lines = std::max<size_t>(mean_words / 8, 5);
  for (size_t i = 0; i < lines; ++i) {
    std::string_view fn = Pick(rng, kCodeIdentifiers);
    std::string_view arg = Pick(rng, kCodeIdentifiers);
    if (high_quality && rng->Bernoulli(0.3)) {
      doc += "// ";
      doc += CorpusGenerator::CleanSentence(rng);
      doc += "\n";
    }
    doc += "int ";
    doc += fn;
    doc += "_";
    doc += std::to_string(rng->NextBelow(100));
    doc += "(int ";
    doc += arg;
    doc += ") { return ";
    doc += arg;
    if (high_quality) {
      doc += " + ";
      doc += std::to_string(rng->NextBelow(10));
    } else {
      // Low-quality code: minified repetition.
      for (int k = 0; k < 4; ++k) {
        doc += "+";
        doc += arg;
      }
    }
    doc += "; }\n";
  }
  return doc;
}

std::string WebDocument(Rng* rng, size_t mean_words) {
  std::string doc;
  if (rng->Bernoulli(0.3)) {
    doc += "<div class=\"content\"><p>";
    doc += CorpusGenerator::CleanParagraph(rng, 2);
    doc += "</p></div>\n";
  }
  size_t words = text::CountWords(doc);
  while (words < mean_words) {
    std::string para = CorpusGenerator::CleanParagraph(rng, 3);
    words += text::CountWords(para);
    doc += para;
    doc += "\n\n";
  }
  if (rng->Bernoulli(0.25)) {
    doc += "Contact us at info@example.com or visit https://example.com/more\n";
  }
  return doc;
}

}  // namespace

std::string SyntheticCodeDocument(Rng* rng, size_t mean_words,
                                  bool high_quality) {
  return CodeDocument(rng, mean_words, high_quality);
}

const char* StyleName(Style style) {
  switch (style) {
    case Style::kWiki:
      return "wiki";
    case Style::kBooks:
      return "books";
    case Style::kArxiv:
      return "arxiv";
    case Style::kStackExchange:
      return "stackexchange";
    case Style::kCode:
      return "code";
    case Style::kWeb:
      return "web";
    case Style::kCrawl:
      return "crawl";
    case Style::kChinese:
      return "chinese";
  }
  return "unknown";
}

CorpusGenerator::CorpusGenerator(CorpusOptions options)
    : options_(options) {}

std::string CorpusGenerator::CleanSentence(Rng* rng) {
  std::string s = Capitalize(std::string(Pick(rng, kSubjects)));
  s += " ";
  s += Pick(rng, kVerbs);
  s += " ";
  s += Pick(rng, kObjects);
  if (rng->Bernoulli(0.7)) {
    s += " ";
    s += Pick(rng, kModifiers);
  }
  s += ".";
  return s;
}

std::string CorpusGenerator::CleanParagraph(Rng* rng, size_t sentences) {
  std::string out;
  for (size_t i = 0; i < sentences; ++i) {
    if (i > 0) out += " ";
    out += CleanSentence(rng);
  }
  return out;
}

std::string CorpusGenerator::SpamLine(Rng* rng) {
  std::string out = "buy now";
  for (int i = 0; i < 8; ++i) {
    out += " ";
    out += Pick(rng, kSpamWords);
  }
  out += " click here !!!";
  return out;
}

std::string CorpusGenerator::BoilerplateParagraph() {
  return "Home | About | Contact | Privacy Policy | Terms of Service | "
         "Subscribe to our newsletter for the latest updates.";
}

std::string CorpusGenerator::GenerateDocument(Rng* rng) const {
  switch (options_.style) {
    case Style::kWiki: {
      std::string doc;
      size_t words = 0;
      while (words < options_.mean_words) {
        std::string para = CleanParagraph(rng, 4);
        words += text::CountWords(para);
        doc += para;
        doc += "\n\n";
      }
      return doc;
    }
    case Style::kBooks: {
      std::string doc;
      size_t words = 0;
      while (words < options_.mean_words) {
        std::string para(Pick(rng, kBookPhrases));
        para += " ";
        std::string rest = CleanParagraph(rng, 4);
        rest[0] = static_cast<char>(std::tolower(rest[0]));
        para += rest;
        words += text::CountWords(para);
        doc += para;
        doc += "\n\n";
      }
      return doc;
    }
    case Style::kArxiv:
      return ArxivDocument(rng, options_.mean_words);
    case Style::kStackExchange:
      return StackExchangeDocument(rng, options_.mean_words);
    case Style::kCode:
      return CodeDocument(rng, options_.mean_words, /*high_quality=*/true);
    case Style::kWeb:
      return WebDocument(rng, options_.mean_words);
    case Style::kCrawl: {
      // Crawl text: web-like but always degraded — raw CommonCrawl pages
      // carry navigation boilerplate at minimum, usually more.
      std::string doc = WebDocument(rng, options_.mean_words / 2);
      bool degraded = false;
      if (rng->Bernoulli(0.6)) {
        doc += SpamLine(rng);
        doc += "\n";
        degraded = true;
      }
      if (rng->Bernoulli(0.5)) {
        // Keyword-stuffed word salad.
        for (int i = 0; i < 40; ++i) {
          doc += Pick(rng, kCodeIdentifiers);
          doc += " ";
        }
        doc += "\n";
        degraded = true;
      }
      if (!degraded || rng->Bernoulli(0.6)) {
        doc = BoilerplateParagraph() + "\n" + doc + "\n" +
              BoilerplateParagraph();
      }
      return doc;
    }
    case Style::kChinese: {
      std::string doc;
      for (size_t i = 0; i < std::max<size_t>(options_.mean_words / 12, 3);
           ++i) {
        doc += Pick(rng, kChineseSentences);
      }
      return doc;
    }
  }
  return "";
}

std::string CorpusGenerator::DecorateWithNoise(std::string doc,
                                               Rng* rng) const {
  if (rng->Bernoulli(options_.boilerplate_rate)) {
    doc = BoilerplateParagraph() + "\n\n" + doc + "\n" +
          BoilerplateParagraph();
  }
  if (rng->Bernoulli(options_.spam_rate)) {
    doc += "\n";
    doc += SpamLine(rng);
  }
  if (rng->Bernoulli(options_.noise_rate)) {
    // Mojibake, control characters, and an absurdly long token.
    doc += "\n\xC3\xA2\xE2\x82\xAC\xE2\x84\xA2 \x01\x02 ";
    doc.append(80, 'x');
  }
  return doc;
}

data::Dataset CorpusGenerator::Generate() {
  Rng rng(options_.seed);
  data::Dataset ds;
  std::vector<std::string> previous;
  previous.reserve(options_.num_docs);
  for (size_t i = 0; i < options_.num_docs; ++i) {
    std::string doc;
    bool duplicate = false;
    if (!previous.empty() && rng.Bernoulli(options_.exact_dup_rate)) {
      doc = previous[rng.NextBelow(previous.size())];
      duplicate = true;
    } else if (!previous.empty() && rng.Bernoulli(options_.near_dup_rate)) {
      doc = previous[rng.NextBelow(previous.size())];
      doc += " ";
      doc += CleanSentence(&rng);  // light perturbation
      duplicate = true;
    } else if (rng.Bernoulli(options_.foreign_rate)) {
      for (int s = 0; s < 6; ++s) {
        doc += kGermanSentences[rng.NextBelow(
            sizeof(kGermanSentences) / sizeof(kGermanSentences[0]))];
        doc += " ";
      }
    } else if (rng.Bernoulli(options_.short_doc_rate)) {
      doc = "ok thanks";
    } else {
      doc = GenerateDocument(&rng);
    }
    if (!duplicate) doc = DecorateWithNoise(std::move(doc), &rng);
    previous.push_back(doc);

    data::Sample sample = data::Sample::FromText(std::move(doc));
    sample.Set("meta.source", json::Value(StyleName(options_.style)));
    sample.Set("meta.doc_id", json::Value(static_cast<int64_t>(i)));
    if (options_.style == Style::kCode) {
      sample.Set("meta.language", json::Value("cpp"));
      sample.Set("meta.stars",
                 json::Value(static_cast<int64_t>(rng.NextBelow(3000))));
      sample.Set("meta.suffix", json::Value(".cpp"));
    }
    sample.Set("meta.lang", json::Value(options_.style == Style::kChinese
                                            ? "zh"
                                            : "en"));
    ds.AppendSample(sample);
  }
  return ds;
}

data::Dataset GenerateCorpusWithTokens(Style style, uint64_t approx_tokens,
                                       uint64_t seed,
                                       const CorpusOptions* base) {
  CorpusOptions options = base != nullptr ? *base : CorpusOptions{};
  options.style = style;
  options.seed = seed;
  if (options.mean_words == 0) options.mean_words = 180;
  options.num_docs = std::max<size_t>(
      1, static_cast<size_t>(approx_tokens / options.mean_words));
  return CorpusGenerator(options).Generate();
}

data::Dataset GenerateInstructionDataset(const InstructionOptions& options) {
  Rng rng(options.seed);
  data::Dataset ds;
  std::vector<std::string> previous_instructions;
  for (size_t i = 0; i < options.num_samples; ++i) {
    std::string instruction;
    if (!previous_instructions.empty() && rng.Bernoulli(options.dup_rate)) {
      instruction =
          previous_instructions[rng.NextBelow(previous_instructions.size())];
    } else {
      instruction = Capitalize(std::string(Pick(&rng, kVerbs)));
      instruction += " ";
      instruction += Pick(&rng, kObjects);
      instruction += rng.Bernoulli(0.5) ? "." : " in a few sentences.";
    }
    previous_instructions.push_back(instruction);

    std::string output;
    bool low_quality = rng.Bernoulli(options.low_quality_rate);
    if (low_quality) {
      output = rng.Bernoulli(0.5) ? "ok" : CorpusGenerator::SpamLine(&rng);
    } else {
      output = CorpusGenerator::CleanParagraph(&rng, 2 + rng.NextBelow(3));
    }

    data::Sample sample;
    sample.Set("text.instruction", json::Value(instruction));
    sample.Set("text.input", json::Value(""));
    sample.Set("text.output", json::Value(output));
    // A flat rendering for OPs that process the whole example.
    sample.Set("text.full", json::Value(instruction + "\n" + output));
    sample.Set("meta.dataset", json::Value(options.dataset_name));
    sample.Set("meta.usage", json::Value(options.usage));
    sample.Set("meta.lang", json::Value(options.lang));
    sample.Set("meta.quality_label",
               json::Value(low_quality ? "low" : "high"));
    ds.AppendSample(sample);
  }
  return ds;
}

}  // namespace dj::workload
