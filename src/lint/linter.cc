#include "lint/linter.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "common/string_util.h"
#include "core/fusion.h"
#include "data/sample.h"
#include "ops/op_effects.h"

namespace dj::lint {
namespace {

std::string ValueTypeName(const json::Value& v) {
  switch (v.type()) {
    case json::Value::Type::kNull:
      return "null";
    case json::Value::Type::kBool:
      return "bool";
    case json::Value::Type::kInt:
      return "int";
    case json::Value::Type::kDouble:
      return "number";
    case json::Value::Type::kString:
      return "string";
    case json::Value::Type::kArray:
      return "list";
    case json::Value::Type::kObject:
      return "mapping";
  }
  return "unknown";
}

std::string FormatBound(double v) { return FormatDouble(v, 6); }

int SeverityRank(Severity s) { return static_cast<int>(s); }

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += ": ";
  if (op_index >= 0) {
    out += "op[" + std::to_string(op_index) + "]";
    if (!op_name.empty()) out += " '" + op_name + "'";
    out += ": ";
  }
  out += message;
  if (!hint.empty()) out += " (" + hint + ")";
  return out;
}

json::Value Diagnostic::ToJson() const {
  json::Object root;
  root.Set("severity", json::Value(SeverityName(severity)));
  root.Set("op_index", json::Value(static_cast<int64_t>(op_index)));
  root.Set("op_name", json::Value(op_name));
  root.Set("message", json::Value(message));
  root.Set("hint", json::Value(hint));
  return json::Value(std::move(root));
}

size_t LintReport::Count(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string LintReport::ToString() const {
  std::vector<const Diagnostic*> sorted;
  sorted.reserve(diagnostics.size());
  for (const Diagnostic& d : diagnostics) sorted.push_back(&d);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return SeverityRank(a->severity) <
                            SeverityRank(b->severity);
                   });
  std::string out;
  for (const Diagnostic* d : sorted) {
    out += "  " + d->ToString() + "\n";
  }
  out += std::to_string(errors()) + " error(s), " +
         std::to_string(warnings()) + " warning(s), " +
         std::to_string(notes()) + " note(s)\n";
  return out;
}

json::Value LintReport::ToJson() const {
  json::Object root;
  root.Set("errors", json::Value(static_cast<int64_t>(errors())));
  root.Set("warnings", json::Value(static_cast<int64_t>(warnings())));
  root.Set("notes", json::Value(static_cast<int64_t>(notes())));
  json::Array list;
  for (const Diagnostic& d : diagnostics) list.push_back(d.ToJson());
  root.Set("diagnostics", json::Value(std::move(list)));
  return json::Value(std::move(root));
}

RecipeLinter::RecipeLinter(const ops::OpRegistry& registry, Options options)
    : registry_(registry), options_(options) {}

std::string RecipeLinter::ClosestMatch(
    std::string_view name, const std::vector<std::string>& candidates) {
  std::string best;
  size_t best_dist = SIZE_MAX;
  for (const std::string& candidate : candidates) {
    size_t dist = EditDistance(name, candidate);
    if (dist < best_dist) {
      best_dist = dist;
      best = candidate;
    }
  }
  size_t limit = std::max<size_t>(2, name.size() / 4);
  return best_dist <= limit ? best : std::string();
}

LintReport RecipeLinter::Lint(const core::Recipe& recipe) const {
  LintReport report;
  auto add = [&report](Severity severity, int op_index, std::string op_name,
                       std::string message, std::string hint = "") {
    report.diagnostics.push_back({severity, op_index, std::move(op_name),
                                  std::move(message), std::move(hint)});
  };

  // ----- Recipe-level checks -------------------------------------------
  if (recipe.process.empty()) {
    add(Severity::kWarning, -1, "", "'process' list is empty; nothing runs");
  }
  if (recipe.use_cache && recipe.cache_dir.empty()) {
    add(Severity::kError, -1, "",
        "use_cache is enabled but cache_dir is empty",
        "set cache_dir to a writable directory");
  }
  if (recipe.use_checkpoint && recipe.checkpoint_dir.empty()) {
    add(Severity::kError, -1, "",
        "use_checkpoint is enabled but checkpoint_dir is empty",
        "set checkpoint_dir to a writable directory");
  }
  if (recipe.extras.is_object()) {
    std::vector<std::string> known;
    for (std::string_view k : core::Recipe::KnownKeys()) {
      known.emplace_back(k);
    }
    for (const auto& [key, value] : recipe.extras.as_object().entries()) {
      std::string suggestion = ClosestMatch(key, known);
      add(Severity::kWarning, -1, "",
          "unknown top-level key '" + key + "' is ignored",
          suggestion.empty() ? "" : "did you mean '" + suggestion + "'?");
    }
  }

  // ----- Per-OP checks --------------------------------------------------
  const std::vector<std::string> op_names = registry_.Names();
  std::vector<std::unique_ptr<ops::Op>> instances(recipe.process.size());
  // Keep-window facts gathered for the dataflow pass below: whether each
  // OP's [min, max] spans its schema's whole valid range (the filter then
  // drops nothing), and the first OP whose keep-range is empty.
  std::vector<bool> vacuous_bounds(recipe.process.size(), false);
  int first_empty_range = -1;
  for (size_t i = 0; i < recipe.process.size(); ++i) {
    const core::OpSpec& spec = recipe.process[i];
    const int idx = static_cast<int>(i);
    if (!registry_.Contains(spec.name)) {
      std::string suggestion = ClosestMatch(spec.name, op_names);
      add(Severity::kError, idx, spec.name, "unknown OP",
          suggestion.empty() ? "see dj_lint --ops for the full list"
                             : "did you mean '" + suggestion + "'?");
      continue;
    }

    const ops::OpSchema* schema = registry_.FindSchema(spec.name);
    if (schema == nullptr) {
      add(Severity::kNote, idx, spec.name,
          "OP has no declared parameter schema; params not checked");
    } else if (spec.params.is_object()) {
      for (const auto& [key, value] : spec.params.as_object().entries()) {
        const ops::ParamSpec* param = schema->Find(key);
        if (param == nullptr) {
          std::string suggestion = ClosestMatch(key, schema->Keys());
          add(Severity::kError, idx, spec.name,
              "unknown param '" + key + "' would be silently ignored",
              suggestion.empty() ? "" : "did you mean '" + suggestion + "'?");
          continue;
        }
        if (!ops::ValueMatchesType(value, param->type)) {
          add(Severity::kError, idx, spec.name,
              "param '" + key + "' expects " + ops::ParamTypeName(param->type) +
                  ", got " + ValueTypeName(value));
          continue;
        }
        if (value.is_number() && param->has_range()) {
          double v = value.as_double();
          if (v < param->min_value || v > param->max_value) {
            add(Severity::kWarning, idx, spec.name,
                "param '" + key + "' value " + FormatBound(v) +
                    " is outside the valid range [" +
                    FormatBound(param->min_value) + ", " +
                    FormatBound(param->max_value) + "]");
          }
        }
      }

      // Empty keep-range: effective min above effective max drops every
      // sample (paper recipes rely on [min, max] keep-windows).
      const ops::ParamSpec* min_spec = schema->Find("min");
      const ops::ParamSpec* max_spec = schema->Find("max");
      if (min_spec != nullptr && max_spec != nullptr) {
        const json::Value* min_v = spec.params.as_object().Find("min");
        const json::Value* max_v = spec.params.as_object().Find("max");
        double min_eff = (min_v != nullptr && min_v->is_number())
                             ? min_v->as_double()
                             : (min_spec->def.is_number()
                                    ? min_spec->def.as_double()
                                    : -ops::kParamInf);
        double max_eff = (max_v != nullptr && max_v->is_number())
                             ? max_v->as_double()
                             : (max_spec->def.is_number()
                                    ? max_spec->def.as_double()
                                    : ops::kParamInf);
        if (min_eff > max_eff) {
          add(Severity::kError, idx, spec.name,
              "empty keep-range: effective min " + FormatBound(min_eff) +
                  " > max " + FormatBound(max_eff) +
                  " discards every sample");
          if (first_empty_range < 0) first_empty_range = idx;
        }
        vacuous_bounds[i] =
            min_eff <= min_spec->min_value &&
            (max_eff >= max_spec->max_value ||
             max_eff >= std::numeric_limits<double>::max());
      }
    }

    auto created = registry_.Create(spec.name, spec.params);
    if (created.ok()) {
      instances[i] = std::move(created).value();
    } else {
      add(Severity::kError, idx, spec.name,
          "OP fails to instantiate: " + created.status().ToString());
    }
  }

  // ----- Duplicate identical OPs ---------------------------------------
  for (size_t j = 1; j < recipe.process.size(); ++j) {
    for (size_t i = 0; i < j; ++i) {
      if (recipe.process[i].name == recipe.process[j].name &&
          recipe.process[i].params == recipe.process[j].params) {
        add(Severity::kWarning, static_cast<int>(j), recipe.process[j].name,
            "identical duplicate of op[" + std::to_string(i) + "]",
            "drop one of the two");
        break;
      }
    }
  }

  // ----- OP ordering: dedup before cleaning mappers --------------------
  // The paper's recipes clean text first so near-duplicates differing only
  // in markup/noise actually collide in the deduplicator.
  for (size_t i = 0; i < instances.size(); ++i) {
    if (instances[i] == nullptr ||
        instances[i]->kind() != ops::OpKind::kDeduplicator) {
      continue;
    }
    for (size_t j = i + 1; j < instances.size(); ++j) {
      if (instances[j] != nullptr &&
          instances[j]->kind() == ops::OpKind::kMapper) {
        add(Severity::kWarning, static_cast<int>(i), recipe.process[i].name,
            "deduplicator runs before cleaning mapper '" +
                recipe.process[j].name + "' (op[" + std::to_string(j) + "])",
            "move dedup after the mappers so cleaned duplicates collide");
        break;
      }
    }
  }

  // ----- Effect dataflow (available-field propagation) -----------------
  // Walk the pipeline with the declared OpEffects, tracking which stats
  // keys earlier OPs have produced. The "stats" column is a closed
  // namespace — it only exists through this recipe's own OPs — so a read
  // of a never-produced stats field is a hard error. Reads of other
  // columns (text, meta.*) depend on the input data, which static
  // analysis cannot see.
  if (options_.effects_checks) {
    std::vector<std::optional<ops::ResolvedEffects>> fx(instances.size());
    for (size_t i = 0; i < instances.size(); ++i) {
      if (instances[i] == nullptr) continue;
      const int idx = static_cast<int>(i);
      const ops::OpEffects* effects =
          registry_.FindEffects(instances[i]->name());
      if (effects == nullptr) {
        add(Severity::kNote, idx, recipe.process[i].name,
            "OP has no declared effect signature; dataflow not checked");
        continue;
      }
      auto resolved = effects->Resolve(*instances[i]);
      if (!resolved.ok()) {
        add(Severity::kWarning, idx, recipe.process[i].name,
            "effect signature does not resolve: " +
                resolved.status().ToString());
        continue;
      }
      fx[i] = std::move(resolved).value();
    }

    const std::string stats_prefix = std::string(data::kStatsField) + ".";
    auto is_own_stat = [](const ops::ResolvedEffects& e,
                          const std::string& key) {
      return std::find(e.stats.begin(), e.stats.end(), key) != e.stats.end();
    };
    std::map<std::string, size_t> stat_producer;  // stat key -> OP index
    for (size_t i = 0; i < fx.size(); ++i) {
      if (!fx[i].has_value()) continue;
      const int idx = static_cast<int>(i);
      for (const std::string& path : fx[i]->reads) {
        if (path.compare(0, stats_prefix.size(), stats_prefix) != 0) {
          continue;
        }
        std::string key = path.substr(stats_prefix.size());
        if (is_own_stat(*fx[i], key)) continue;
        if (stat_producer.find(key) != stat_producer.end()) continue;
        std::string hint;
        for (const ops::OpEffects* e : registry_.AllEffects()) {
          const auto& produced = e->stats_produced();
          if (std::find(produced.begin(), produced.end(), key) !=
              produced.end()) {
            hint = "run '" + e->op_name() + "' earlier in the recipe to "
                   "produce it";
            break;
          }
        }
        add(Severity::kError, idx, recipe.process[i].name,
            "reads stat '" + key + "' ('" + path +
                "') which no earlier OP produces",
            hint);
      }
      for (const std::string& key : fx[i]->stats) {
        auto it = stat_producer.find(key);
        if (it != stat_producer.end()) {
          add(Severity::kWarning, idx, recipe.process[i].name,
              "stat '" + key + "' was already produced by op[" +
                  std::to_string(it->second) + "] '" +
                  recipe.process[it->second].name +
                  "'; ComputeStats skips present stats, so this OP filters "
                  "on the earlier OP's value",
              "give the two OPs different text_key fields or drop one");
        } else {
          stat_producer[key] = i;
        }
      }
    }

    // Dead stat writes: the OP computes a stat but its keep-window spans
    // the whole valid range (drops nothing), no later OP reads the stat,
    // and the recipe exports nothing that would carry it. Advisory only —
    // analysis-style recipes do this on purpose and export via --output.
    if (recipe.export_path.empty()) {
      for (size_t i = 0; i < fx.size(); ++i) {
        if (!fx[i].has_value() || !vacuous_bounds[i]) continue;
        for (const std::string& key : fx[i]->stats) {
          if (stat_producer.find(key) != stat_producer.end() &&
              stat_producer[key] != i) {
            continue;  // collision already diagnosed above
          }
          bool read_later = false;
          for (size_t j = i + 1; j < fx.size() && !read_later; ++j) {
            if (!fx[j].has_value()) continue;
            std::string path = stats_prefix + key;
            read_later = !is_own_stat(*fx[j], key) &&
                         std::find(fx[j]->reads.begin(), fx[j]->reads.end(),
                                   path) != fx[j]->reads.end();
          }
          if (!read_later) {
            add(Severity::kNote, static_cast<int>(i), recipe.process[i].name,
                "dead write: stat '" + key + "' is computed but the bounds "
                "keep every sample, no later OP reads it, and the recipe "
                "has no export_path");
          }
        }
      }
    }

    // Everything after an empty keep-range runs on zero rows.
    if (first_empty_range >= 0 &&
        static_cast<size_t>(first_empty_range) + 1 < instances.size()) {
      add(Severity::kWarning, first_empty_range + 1,
          recipe.process[first_empty_range + 1].name,
          "unreachable: op[" + std::to_string(first_empty_range) + "] '" +
              recipe.process[first_empty_range].name +
              "' discards every sample, so this OP and all later OPs "
              "process nothing");
    }
  }

  // ----- Fusion notes (dry planning pass, paper Sec. 7) ----------------
  bool all_instantiated =
      std::all_of(instances.begin(), instances.end(),
                  [](const std::unique_ptr<ops::Op>& op) {
                    return op != nullptr;
                  });
  if (options_.fusion_notes && all_instantiated && !instances.empty()) {
    // Maximal runs of consecutive Filters are the planner's fusion groups.
    size_t i = 0;
    size_t fusible_runs = 0;
    while (i < instances.size()) {
      if (instances[i]->kind() != ops::OpKind::kFilter) {
        // A non-filter with filters on both sides splits a group.
        if (recipe.op_fusion && i > 0 && i + 1 < instances.size() &&
            instances[i - 1]->kind() == ops::OpKind::kFilter &&
            instances[i + 1]->kind() == ops::OpKind::kFilter) {
          add(Severity::kNote, static_cast<int>(i), recipe.process[i].name,
              "non-filter OP splits a filter group; fusion cannot cross it",
              "move it before or after the surrounding filters if "
              "order-independent");
        }
        ++i;
        continue;
      }
      size_t begin = i;
      while (i < instances.size() &&
             instances[i]->kind() == ops::OpKind::kFilter) {
        ++i;
      }
      if (i - begin < 2) continue;

      std::vector<ops::Op*> group;
      for (size_t k = begin; k < i; ++k) group.push_back(instances[k].get());
      core::FusionOptions fuse_opts;
      fuse_opts.enable_fusion = true;
      fuse_opts.enable_reorder = false;
      std::vector<core::PlanUnit> plan = core::PlanFusion(group, fuse_opts);
      bool has_fused_unit =
          std::any_of(plan.begin(), plan.end(),
                      [](const core::PlanUnit& u) { return u.is_fused(); });
      if (has_fused_unit) ++fusible_runs;
      if (!recipe.op_fusion) continue;
      if (!has_fused_unit) {
        add(Severity::kNote, static_cast<int>(begin),
            recipe.process[begin].name,
            "group of " + std::to_string(i - begin) +
                " consecutive filters won't fuse: fewer than two of them "
                "share the per-sample context on the same field");
        continue;
      }
      // Explain each filter the planner left outside the fused unit(s).
      for (const core::PlanUnit& unit : plan) {
        if (unit.is_fused()) continue;
        auto* filter = static_cast<ops::Filter*>(unit.op);
        size_t k = begin;
        while (instances[k].get() != unit.op) ++k;
        std::string reason =
            filter->UsesContext()
                ? "no other context-sharing filter targets field '" +
                      filter->text_key() + "'"
                : "it computes its stat without the shared sample context";
        add(Severity::kNote, static_cast<int>(k), recipe.process[k].name,
            "stays outside the fused stats pass: " + reason);
      }
    }
    if (!recipe.op_fusion && fusible_runs > 0) {
      add(Severity::kNote, -1, "",
          std::to_string(fusible_runs) +
              " filter group(s) could fuse into shared stats passes",
          "set op_fusion: true");
    }
  }

  return report;
}

}  // namespace dj::lint
