#ifndef DJ_LINT_EXPLAIN_PLAN_H_
#define DJ_LINT_EXPLAIN_PLAN_H_

#include <string>

#include "common/status.h"
#include "core/recipe.h"
#include "ops/registry.h"

namespace dj::lint {

/// Renders the optimized execution plan of `recipe` (dj_lint
/// --explain-plan): the PlanFusion unit list with per-unit costs, one line
/// per order swap with its effect-based justification from core::VerifyPlan,
/// and the final verdict. Honors the recipe's op_fusion/op_reorder flags;
/// with both off it reports that OPs run in recipe order. Fails when the
/// recipe's OP list does not instantiate.
Result<std::string> ExplainPlan(const core::Recipe& recipe,
                                const ops::OpRegistry& registry);

}  // namespace dj::lint

#endif  // DJ_LINT_EXPLAIN_PLAN_H_
