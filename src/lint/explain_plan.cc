#include "lint/explain_plan.h"

#include <cstdio>
#include <memory>
#include <vector>

#include "core/executor.h"
#include "core/fusion.h"
#include "core/plan_verify.h"

namespace dj::lint {

Result<std::string> ExplainPlan(const core::Recipe& recipe,
                                const ops::OpRegistry& registry) {
  DJ_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<ops::Op>> ops,
                      core::BuildOps(recipe, registry));

  core::FusionOptions fusion_options{recipe.op_fusion, recipe.op_reorder};
  std::vector<core::PlanUnit> plan = core::PlanFusion(ops, fusion_options);

  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%zu OP(s) -> %zu unit(s)", ops.size(),
                plan.size());
  out += "plan";
  if (!recipe.project_name.empty()) out += " for '" + recipe.project_name + "'";
  out += ": " + std::string(buf);
  out += std::string(" (op_fusion=") + (recipe.op_fusion ? "on" : "off") +
         ", op_reorder=" + (recipe.op_reorder ? "on" : "off") + ")\n";
  for (size_t i = 0; i < plan.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "  unit[%zu] ", i);
    out += buf;
    out += plan[i].DisplayName();
    std::snprintf(buf, sizeof(buf), "  cost=%.1f", plan[i].CostEstimate());
    out += buf;
    out += "\n";
  }

  if (!recipe.op_fusion && !recipe.op_reorder) {
    out += "no plan transformations enabled; OPs run in recipe order\n";
    return out;
  }

  core::PlanVerdict verdict = core::VerifyPlan(ops, plan, registry);
  if (!verdict.swaps.empty()) {
    out += "swaps (" + std::to_string(verdict.swaps.size()) + "):\n";
  }
  out += verdict.ToString();
  if (!verdict.ok) {
    out += "the executor will fall back to recipe order\n";
  }
  return out;
}

}  // namespace dj::lint
