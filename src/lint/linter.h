#ifndef DJ_LINT_LINTER_H_
#define DJ_LINT_LINTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/recipe.h"
#include "json/value.h"
#include "ops/registry.h"

namespace dj::lint {

/// Diagnostic severity. Errors mean the recipe will misbehave (unknown OP,
/// ignored param, empty keep-range); warnings mean it will run but likely
/// not do what was intended; notes are advisory (fusion opportunities).
enum class Severity { kError, kWarning, kNote };

const char* SeverityName(Severity severity);

/// One structured finding of the recipe linter.
struct Diagnostic {
  Severity severity = Severity::kNote;
  /// Index into Recipe::process, or -1 for recipe-level findings.
  int op_index = -1;
  /// OP name the finding is about; empty for recipe-level findings.
  std::string op_name;
  std::string message;
  /// Optional actionable fix ("did you mean 'min_score'?").
  std::string hint;

  /// "error: op[3] 'languge_id_score_filter': unknown OP (did you mean ...)"
  std::string ToString() const;
  json::Value ToJson() const;
};

/// Result of linting one recipe.
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  size_t errors() const { return Count(Severity::kError); }
  size_t warnings() const { return Count(Severity::kWarning); }
  size_t notes() const { return Count(Severity::kNote); }
  /// True when the recipe is safe to run (no errors).
  bool ok() const { return errors() == 0; }

  /// Multi-line human-readable listing (one diagnostic per line, most
  /// severe first) plus a summary line.
  std::string ToString() const;
  /// {"errors": N, "warnings": N, "notes": N, "diagnostics": [...]}.
  json::Value ToJson() const;

 private:
  size_t Count(Severity severity) const;
};

/// Static analyzer over data recipes (paper Sec. 6.1 "all-in-one
/// configuration"): checks a parsed Recipe against the OP registry's
/// declared parameter schemas and the executor's fusion planner without
/// touching any data. Diagnoses, among others:
///
///   - unknown OP names, with did-you-mean suggestions;
///   - unknown / typo'd param keys and type or range violations
///     (via each OP's registered OpSchema);
///   - empty keep-ranges (effective min > max);
///   - duplicate identical OPs;
///   - use_cache / use_checkpoint without a directory;
///   - deduplication placed before cleaning mappers;
///   - fusion-blocker notes from a dry core::PlanFusion pass;
///   - effect-dataflow findings (reads of never-produced stats fields,
///     stat-key collisions, dead stat writes, unreachable OPs) by
///     propagating the available-field set through the declared OpEffects.
class RecipeLinter {
 public:
  struct Options {
    /// Emit kNote diagnostics about OP fusion (blockers + opportunities).
    bool fusion_notes = true;
    /// Run the effect-dataflow pass over the declared OpEffects.
    bool effects_checks = true;
  };

  explicit RecipeLinter(const ops::OpRegistry& registry)
      : RecipeLinter(registry, Options()) {}
  RecipeLinter(const ops::OpRegistry& registry, Options options);

  LintReport Lint(const core::Recipe& recipe) const;

  /// Best did-you-mean candidate for `name` among `candidates`, or "" when
  /// nothing is close enough (edit distance must beat max(2, len/4)).
  static std::string ClosestMatch(std::string_view name,
                                  const std::vector<std::string>& candidates);

 private:
  const ops::OpRegistry& registry_;
  Options options_;
};

}  // namespace dj::lint

#endif  // DJ_LINT_LINTER_H_
