#include "obs/watchdog.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/resource_monitor.h"
#include "common/string_util.h"
#include "common/thread_introspect.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace dj::obs {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

}  // namespace

Status Watchdog::ParseSpec(std::string_view spec, Options* out,
                           bool* enabled) {
  *enabled = true;
  std::string text(spec);
  if (text.empty() || text == "off") {
    *enabled = false;
    return Status::Ok();
  }
  auto parse_positive = [](const std::string& value, double* dst) {
    char* end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || !(v > 0)) return false;
    *dst = v;
    return true;
  };
  // Bare number: just the stall threshold in seconds.
  if (text.find('=') == std::string::npos) {
    if (!parse_positive(text, &out->stall_seconds)) {
      return Status::InvalidArgument("DJ_WATCHDOG: bad threshold '" + text +
                                     "' (want seconds > 0, or 'off')");
    }
    return Status::Ok();
  }
  for (const std::string& entry : Split(text, ';')) {
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("DJ_WATCHDOG: entry '" +
                                     std::string(entry) + "' has no '='");
    }
    std::string key(entry.substr(0, eq));
    std::string value(entry.substr(eq + 1));
    double* dst = nullptr;
    if (key == "stall") {
      dst = &out->stall_seconds;
    } else if (key == "poll") {
      dst = &out->poll_seconds;
    } else {
      return Status::InvalidArgument("DJ_WATCHDOG: unknown key '" + key +
                                     "' (want stall/poll)");
    }
    if (!parse_positive(value, dst)) {
      return Status::InvalidArgument("DJ_WATCHDOG: bad value '" + value +
                                     "' for '" + key + "'");
    }
  }
  return Status::Ok();
}

Watchdog::Watchdog() : Watchdog(Options()) {}

Watchdog::Watchdog(Options options) : options_(options) {
  if (options_.stall_seconds <= 0) options_.stall_seconds = 30.0;
  if (options_.poll_seconds <= 0) {
    options_.poll_seconds = options_.stall_seconds / 4;
    if (options_.poll_seconds < 0.002) options_.poll_seconds = 0.002;
    if (options_.poll_seconds > 1.0) options_.poll_seconds = 1.0;
  }
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  if (running_.exchange(true)) return;
  introspect::AddUser();
  poller_ = std::thread([this] { PollLoop(); });
}

void Watchdog::Stop() {
  if (!running_.exchange(false)) return;
  if (poller_.joinable()) poller_.join();
  introspect::RemoveUser();
}

std::string Watchdog::LastDump() const {
  MutexLock lock(&mutex_);
  return last_dump_;
}

void Watchdog::PollLoop() {
  introspect::CurrentThreadState()->SetRole("watchdog.poller");
  while (running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.poll_seconds));
    if (options_.emit_trace_beats) {
      if (SpanRecorder* r = GlobalRecorder(); r != nullptr) {
        r->EmitInstant("watchdog:beat", "watchdog", r->NowMicros());
      }
    }
    PollOnce(introspect::NowMicros());
  }
}

void Watchdog::PollOnce(uint64_t now_micros) {
  const uint64_t stall_micros =
      static_cast<uint64_t>(options_.stall_seconds * 1e6);
  std::vector<introspect::ThreadState*> states =
      introspect::ThreadRegistry::Global().Snapshot();

  // Pass 1: find newly stalled threads; clear the reported marker of any
  // thread that has beaten since its last report (ends the episode).
  std::vector<introspect::ThreadState*> stalled;
  {
    MutexLock lock(&mutex_);
    for (introspect::ThreadState* s : states) {
      uint64_t beat = s->heartbeat_micros();
      bool stale = s->alive() && s->busy() && beat != 0 &&
                   now_micros > beat && now_micros - beat > stall_micros;
      auto it = reported_.find(s->thread_index());
      if (!stale) {
        if (it != reported_.end()) reported_.erase(it);
        continue;
      }
      if (it != reported_.end() && it->second == s->beats()) {
        continue;  // same episode, already dumped
      }
      reported_[s->thread_index()] = s->beats();
      stalled.push_back(s);
    }
  }
  if (stalled.empty()) return;

  // Pass 2: build the live-state dump over ALL threads — the stalled one
  // names the victim, but diagnosing a deadlock needs the whole picture
  // (who holds what, who is idle, how deep the queues are).
  std::string dump;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "=== WATCHDOG: %zu stalled thread(s), threshold %.3fs, "
                "rss %.1f MiB ===\n",
                stalled.size(), options_.stall_seconds,
                static_cast<double>(ResourceMonitor::CurrentRssBytes()) /
                    kMiB);
  dump += buf;
  std::vector<std::string> stack;
  std::vector<const char*> held;
  for (introspect::ThreadState* s : states) {
    if (!s->alive()) continue;
    double age = s->heartbeat_micros() == 0
                     ? 0
                     : static_cast<double>(now_micros -
                                           s->heartbeat_micros()) /
                           1e6;
    bool is_stalled = false;
    for (introspect::ThreadState* v : stalled) is_stalled |= (v == s);
    std::snprintf(buf, sizeof(buf),
                  "%s thread %llu role=%s %s beat %.3fs ago queue_depth=%llu\n",
                  is_stalled ? "  [STALLED]" : "  [ok]     ",
                  static_cast<unsigned long long>(s->thread_index()),
                  (s->role() != nullptr && *s->role() != '\0') ? s->role()
                                                               : "-",
                  s->busy() ? "busy" : "idle", age,
                  static_cast<unsigned long long>(s->queue_depth()));
    dump += buf;
    if (s->ReadStack(&stack) && !stack.empty()) {
      dump += "      spans: ";
      for (size_t i = 0; i < stack.size(); ++i) {
        if (i > 0) dump += " > ";
        dump += stack[i];
      }
      dump += '\n';
    }
    if (s->ReadHeldLocks(&held) && !held.empty()) {
      dump += "      held locks: ";
      for (size_t i = 0; i < held.size(); ++i) {
        if (i > 0) dump += ", ";
        dump += held[i];
      }
      dump += '\n';
    }
  }

  // srclint-allow(raw-output): stall dumps must bypass the (possibly stalled) logger
  std::fputs(dump.c_str(), stderr);
  std::fflush(stderr);
  stall_count_.fetch_add(stalled.size(), std::memory_order_relaxed);
  {
    MutexLock lock(&mutex_);
    last_dump_ = std::move(dump);
  }
  if (MetricsRegistry* m = GlobalMetrics(); m != nullptr) {
    m->GetCounter("watchdog.stalls")->Add(stalled.size());
  }
  if (SpanRecorder* r = GlobalRecorder(); r != nullptr) {
    r->EmitInstant("watchdog:stall", "watchdog", r->NowMicros());
  }
}

}  // namespace dj::obs
