#ifndef DJ_OBS_RUN_JOURNAL_H_
#define DJ_OBS_RUN_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "json/value.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace dj::obs {

/// Per-OP execution stats, the obs-side mirror of core::OpReport (obs sits
/// below core in the dependency graph, so callers convert).
struct OpStat {
  std::string name;
  std::string kind;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  double seconds = 0;
  bool cache_hit = false;
};

/// Whole-run totals.
struct RunTotals {
  double total_seconds = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t cache_hits = 0;
  bool resumed_from_checkpoint = false;
};

/// Aggregate resource usage (mirror of dj::ResourceReport).
struct ResourceUsage {
  double wall_seconds = 0;
  uint64_t peak_rss_bytes = 0;
  uint64_t avg_rss_bytes = 0;
  double cpu_seconds = 0;
  double avg_cpu_utilization = 0;
};

/// Merges the three observability streams of one run — executor OP reports,
/// the metrics registry (cache/checkpoint counters live there), and
/// resource-monitor samples — into a single machine-readable artifact:
/// WriteMetrics() emits metrics.json, and resource samples are interleaved
/// into the span recorder as Chrome counter events so the trace timeline
/// shows RSS/CPU tracks alongside OP spans. Either stream pointer may be
/// null; the journal then reports what it has.
class RunJournal {
 public:
  RunJournal(const MetricsRegistry* metrics, SpanRecorder* spans)
      : metrics_(metrics), spans_(spans) {}

  void SetRunInfo(std::string recipe, std::string dataset);
  void AddOp(OpStat stat);
  void SetTotals(const RunTotals& totals);
  void SetResources(const ResourceUsage& usage);

  /// Attaches a profiler report (obs::Profiler::Report::ToJson()); it
  /// becomes the "profile" key of MetricsJson, so per-OP CPU attribution
  /// ships in the same artifact as per-OP wall times.
  void SetProfile(json::Value profile);

  /// Adds one resource sample. `wall_seconds_offset` is the sample's offset
  /// from `base_ts_micros` on the span recorder's clock; with a recorder
  /// attached, the sample becomes "rss_mib" and "cpu_seconds" counter
  /// events at that timestamp.
  void AddResourceSample(double wall_seconds_offset, uint64_t rss_bytes,
                         double cpu_seconds, uint64_t base_ts_micros = 0);

  /// The merged run report:
  ///   {"schema_version", "run", "ops": [...], "totals", "cache",
  ///    "resources", "profile"?, "metrics": <registry snapshot>}
  json::Value MetricsJson() const;

  /// Pretty-printed MetricsJson() to `path`.
  Status WriteMetrics(const std::string& path) const;

  /// Delegates to the span recorder; InvalidArgument when none is attached.
  Status WriteTrace(const std::string& path) const;

 private:
  const MetricsRegistry* metrics_;
  SpanRecorder* spans_;
  std::string recipe_;
  std::string dataset_;
  std::vector<OpStat> ops_;
  RunTotals totals_;
  ResourceUsage resources_;
  size_t resource_samples_ = 0;
  json::Value profile_;
  bool has_profile_ = false;
};

}  // namespace dj::obs

#endif  // DJ_OBS_RUN_JOURNAL_H_
