#ifndef DJ_OBS_BENCH_DIFF_H_
#define DJ_OBS_BENCH_DIFF_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "json/value.h"

namespace dj::obs {

/// Comparison engine behind tools/dj_bench_diff: diffs two BENCH_*.json
/// reports (bench/bench_util.h JsonReport schema) metric-by-metric and
/// decides whether the current run regressed past a tolerance. This is the
/// machinery that turns the until-now write-only BENCH trajectory into a
/// perf-regression ledger: check.sh runs it as a gate, and the ROADMAP's
/// raw-speed work gets a yes/no answer instead of two JSON files.

/// Which way "better" points for a metric.
enum class MetricDirection {
  kLowerIsBetter,   ///< timings, byte counts
  kHigherIsBetter,  ///< speedups, throughputs, *_ok flags
  kInformational,   ///< environment facts (thread counts); never gates
};

/// Heuristic classification from the key name. Exposed for tests; the CLI
/// lets callers override per metric.
MetricDirection GuessDirection(std::string_view key);

struct BenchDiffOptions {
  /// Allowed relative degradation before a metric counts as a regression
  /// (0.10 = current may be up to 10% worse than baseline).
  double default_tolerance = 0.10;
  std::map<std::string, double> per_metric_tolerance;
  std::map<std::string, MetricDirection> direction_overrides;
};

struct MetricDelta {
  std::string key;
  double baseline = 0;
  double current = 0;
  /// Relative change toward "worse": positive means degraded, negative
  /// improved, regardless of direction. 0 when informational or
  /// baseline == 0.
  double degradation = 0;
  double tolerance = 0;
  MetricDirection direction = MetricDirection::kInformational;
  bool regression = false;
};

struct BenchDiffReport {
  std::string bench;
  std::vector<MetricDelta> deltas;  ///< key order, gated metrics and not
  std::vector<std::string> missing_in_current;   ///< metric disappeared
  std::vector<std::string> missing_in_baseline;  ///< new metric (not gated)

  bool has_regression() const;
  /// Human-readable table; regressions marked "REGRESSED".
  std::string ToString() const;
};

/// Diffs two parsed BENCH_*.json documents. Fails with InvalidArgument
/// when either document lacks the {"bench", "metrics"} shape or the bench
/// names differ. A metric present in the baseline but missing from the
/// current run is itself a regression (a silently dropped measurement must
/// not pass the gate).
Result<BenchDiffReport> BenchDiff(const json::Value& baseline,
                                  const json::Value& current,
                                  const BenchDiffOptions& options = {});

/// Ledger support: collapses prior runs of the same bench into a synthetic
/// baseline whose metric values are the per-metric medians. Runs whose
/// "bench" name differs from `bench` are skipped; fails when nothing
/// matches.
Result<json::Value> LedgerBaseline(const std::vector<json::Value>& runs,
                                   std::string_view bench);

}  // namespace dj::obs

#endif  // DJ_OBS_BENCH_DIFF_H_
