#include "obs/run_journal.h"

#include "common/file_util.h"
#include "json/writer.h"

namespace dj::obs {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

uint64_t CounterValueOr(const MetricsRegistry* metrics, std::string_view name,
                        uint64_t def) {
  if (metrics == nullptr) return def;
  // srclint-allow(dynamic-name): pass-through lookup helper; callers name the counter
  const Counter* c = metrics->FindCounter(name);
  return c == nullptr ? def : c->value();
}

}  // namespace

void RunJournal::SetRunInfo(std::string recipe, std::string dataset) {
  recipe_ = std::move(recipe);
  dataset_ = std::move(dataset);
}

void RunJournal::AddOp(OpStat stat) { ops_.push_back(std::move(stat)); }

void RunJournal::SetTotals(const RunTotals& totals) { totals_ = totals; }

void RunJournal::SetResources(const ResourceUsage& usage) {
  resources_ = usage;
}

void RunJournal::SetProfile(json::Value profile) {
  profile_ = std::move(profile);
  has_profile_ = true;
}

void RunJournal::AddResourceSample(double wall_seconds_offset,
                                   uint64_t rss_bytes, double cpu_seconds,
                                   uint64_t base_ts_micros) {
  ++resource_samples_;
  if (spans_ == nullptr) return;
  uint64_t ts = base_ts_micros +
                static_cast<uint64_t>(wall_seconds_offset * 1e6);
  spans_->EmitCounter("rss_mib", ts, static_cast<double>(rss_bytes) / kMiB);
  spans_->EmitCounter("cpu_seconds", ts, cpu_seconds);
}

json::Value RunJournal::MetricsJson() const {
  json::Object out;
  out.Set("schema_version", json::Value(static_cast<int64_t>(1)));

  json::Object run;
  run.Set("recipe", json::Value(recipe_));
  run.Set("dataset", json::Value(dataset_));
  out.Set("run", json::Value(std::move(run)));

  json::Array ops;
  for (const OpStat& op : ops_) {
    json::Object o;
    o.Set("name", json::Value(op.name));
    o.Set("kind", json::Value(op.kind));
    o.Set("rows_in", json::Value(op.rows_in));
    o.Set("rows_out", json::Value(op.rows_out));
    o.Set("seconds", json::Value(op.seconds));
    o.Set("rows_per_sec",
          json::Value(op.seconds > 0
                          ? static_cast<double>(op.rows_in) / op.seconds
                          : 0.0));
    o.Set("cache_hit", json::Value(op.cache_hit));
    ops.emplace_back(std::move(o));
  }
  out.Set("ops", json::Value(std::move(ops)));

  json::Object totals;
  totals.Set("total_seconds", json::Value(totals_.total_seconds));
  totals.Set("rows_in", json::Value(totals_.rows_in));
  totals.Set("rows_out", json::Value(totals_.rows_out));
  totals.Set("cache_hits", json::Value(totals_.cache_hits));
  totals.Set("resumed_from_checkpoint",
             json::Value(totals_.resumed_from_checkpoint));
  out.Set("totals", json::Value(std::move(totals)));

  json::Object cache;
  cache.Set("hits",
            json::Value(CounterValueOr(metrics_, "cache.hit",
                                       totals_.cache_hits)));
  cache.Set("misses", json::Value(CounterValueOr(metrics_, "cache.miss", 0)));
  cache.Set("load_bytes",
            json::Value(CounterValueOr(metrics_, "cache.load_bytes", 0)));
  cache.Set("store_bytes",
            json::Value(CounterValueOr(metrics_, "cache.store_bytes", 0)));
  out.Set("cache", json::Value(std::move(cache)));

  json::Object resources;
  resources.Set("wall_seconds", json::Value(resources_.wall_seconds));
  resources.Set("peak_rss_bytes", json::Value(resources_.peak_rss_bytes));
  resources.Set("avg_rss_bytes", json::Value(resources_.avg_rss_bytes));
  resources.Set("cpu_seconds", json::Value(resources_.cpu_seconds));
  resources.Set("avg_cpu_utilization",
                json::Value(resources_.avg_cpu_utilization));
  resources.Set("samples", json::Value(static_cast<int64_t>(
                               resource_samples_)));
  out.Set("resources", json::Value(std::move(resources)));

  if (has_profile_) out.Set("profile", profile_);

  out.Set("metrics", metrics_ != nullptr ? metrics_->SnapshotJson()
                                         : json::Value(json::Object()));
  return json::Value(std::move(out));
}

Status RunJournal::WriteMetrics(const std::string& path) const {
  json::WriteOptions options;
  options.pretty = true;
  return WriteStringToFile(path, json::Write(MetricsJson(), options));
}

Status RunJournal::WriteTrace(const std::string& path) const {
  if (spans_ == nullptr) {
    return Status::InvalidArgument("RunJournal has no span recorder");
  }
  return spans_->WriteTo(path);
}

}  // namespace dj::obs
