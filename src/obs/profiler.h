#ifndef DJ_OBS_PROFILER_H_
#define DJ_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "json/value.h"

namespace dj::obs {

/// Always-on sampling profiler. A ticker thread wakes every
/// `interval_seconds` and samples the *span-path tag stack* of every
/// registered thread (see common/thread_introspect.h): busy threads
/// contribute one sample at their current path ("executor.run;unit:x;..."),
/// aggregated into a collapsed-stack table. Because the stacks are the
/// span names the code already declares (DJ_OBS_SPAN guards, executor
/// units, ThreadPool task roots), the profile needs no libunwind, no
/// frame pointers, and no platform-specific signal handling — it is a
/// statistical "where is the CPU going" answer in the program's own
/// vocabulary, cheap enough to leave running for whole production runs.
///
/// Outputs:
///   * CollapsedText() — flamegraph-compatible collapsed stacks
///     ("frame;frame;frame count" lines, feed to flamegraph.pl or
///     speedscope);
///   * OpCpuShares() — fraction of busy samples attributed to each
///     executor unit (the innermost "unit:<op>" frame), with samples
///     outside any unit pooled under "(other)"; shares sum to 1;
///   * per-tick "profile:tick" trace instants and a "profiler.samples"
///     counter on the globally installed recorder/registry, so traces are
///     self-describing about the sampling that ran alongside them.
class Profiler {
 public:
  struct Options {
    double interval_seconds = 0.002;  ///< 500 Hz; ~0 cost for idle threads
    bool emit_trace_ticks = true;     ///< "profile:tick" instants
  };

  /// Aggregated profile. `collapsed` maps a span path (frames joined with
  /// ';', outermost first) to the number of samples observed there.
  struct Report {
    uint64_t ticks = 0;
    uint64_t samples = 0;  ///< busy-thread samples (sum of collapsed counts)
    double interval_seconds = 0;

    std::map<std::string, uint64_t> collapsed;

    /// Flamegraph collapsed-stack text, deterministic order.
    std::string CollapsedText() const;

    /// Per-OP CPU attribution: "unit:<op>" frame -> share of busy samples;
    /// busy samples outside any unit land in "(other)". Empty when no
    /// samples were taken. Values sum to ~1.
    std::map<std::string, double> OpCpuShares() const;

    /// {"interval_seconds", "ticks", "samples", "op_cpu": {...}} — the
    /// "profile" section of metrics.json.
    json::Value ToJson() const;
  };

  Profiler();
  explicit Profiler(Options options);
  ~Profiler();  ///< stops the ticker if still running

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void Start();
  void Stop();

  /// Snapshot of the aggregation so far (callable while running).
  Report Snapshot() const;

  /// Writes CollapsedText() to `path` (parent dirs created).
  Status WriteCollapsed(const std::string& path) const;

 private:
  void TickerLoop();

  Options options_;
  std::atomic<bool> running_{false};
  std::thread ticker_;
  mutable Mutex mutex_{"Profiler.mutex"};
  std::map<std::string, uint64_t> collapsed_ DJ_GUARDED_BY(mutex_);
  uint64_t ticks_ DJ_GUARDED_BY(mutex_) = 0;
  uint64_t samples_ DJ_GUARDED_BY(mutex_) = 0;
};

}  // namespace dj::obs

#endif  // DJ_OBS_PROFILER_H_
