#include "obs/span.h"

#include <algorithm>

#include "common/file_util.h"
#include "json/writer.h"

namespace dj::obs {
namespace {

std::atomic<uint64_t> g_next_recorder_id{1};
std::atomic<SpanRecorder*> g_global_recorder{nullptr};

/// Per-thread cache of buffers registered with live recorders. Keyed by
/// the recorder's process-unique id (not its address) so a recorder created
/// at a freed recorder's address cannot alias a stale cache entry. A thread
/// touches at most a handful of recorders over its lifetime, so a flat
/// vector lookup beats any map.
struct LocalCacheEntry {
  uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local std::vector<LocalCacheEntry> t_buffer_cache;

}  // namespace

SpanRecorder* GlobalRecorder() {
  return g_global_recorder.load(std::memory_order_acquire);
}

void InstallGlobalRecorder(SpanRecorder* recorder) {
  g_global_recorder.store(recorder, std::memory_order_release);
}

SpanRecorder::SpanRecorder()
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

SpanRecorder::~SpanRecorder() = default;

uint64_t SpanRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

SpanRecorder::ThreadBuffer* SpanRecorder::LocalBuffer() {
  for (const LocalCacheEntry& entry : t_buffer_cache) {
    if (entry.recorder_id == id_) {
      return static_cast<ThreadBuffer*>(entry.buffer);
    }
  }
  MutexLock lock(&mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  t_buffer_cache.push_back({id_, buffer});
  return buffer;
}

void SpanRecorder::Append(Event event) {
  ThreadBuffer* buffer = LocalBuffer();
  MutexLock lock(&buffer->mu);
  buffer->events.push_back(std::move(event));
}

void SpanRecorder::EmitComplete(std::string_view name,
                                std::string_view category, uint64_t ts_micros,
                                uint64_t dur_micros) {
  Event e;
  e.ph = 'X';
  e.name = std::string(name);
  e.category = std::string(category);
  e.ts = ts_micros;
  e.dur = dur_micros;
  e.tid = LocalBuffer()->tid;
  Append(std::move(e));
}

void SpanRecorder::EmitCompleteOnLane(std::string_view name,
                                      std::string_view category,
                                      uint64_t ts_micros, uint64_t dur_micros,
                                      int64_t lane_tid) {
  Event e;
  e.ph = 'X';
  e.name = std::string(name);
  e.category = std::string(category);
  e.ts = ts_micros;
  e.dur = dur_micros;
  e.tid = lane_tid;
  Append(std::move(e));
}

void SpanRecorder::EmitCounter(std::string_view series, uint64_t ts_micros,
                               double value) {
  Event e;
  e.ph = 'C';
  e.name = std::string(series);
  e.category = "counter";
  e.ts = ts_micros;
  e.tid = 0;  // counters get their own track; lane is irrelevant
  e.value = value;
  Append(std::move(e));
}

void SpanRecorder::EmitInstant(std::string_view name,
                               std::string_view category,
                               uint64_t ts_micros) {
  Event e;
  e.ph = 'i';
  e.name = std::string(name);
  e.category = std::string(category);
  e.ts = ts_micros;
  e.tid = LocalBuffer()->tid;
  Append(std::move(e));
}

size_t SpanRecorder::EventCount() const {
  MutexLock lock(&mutex_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

json::Value SpanRecorder::ToJson() const {
  // Copy each buffer out under its own lock rather than holding every
  // buffer lock at once: the dump stays coherent per thread (appends are
  // monotone in ts), and the dynamic all-buffers lock set was both
  // unprovable for the static analysis and a nested same-class acquisition
  // pattern the lock-order registry would have to special-case.
  std::vector<Event> events;
  {
    MutexLock lock(&mutex_);
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(&buffer->mu);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });

  json::Array trace_events;
  trace_events.reserve(events.size());
  for (const Event& event : events) {
    const Event* e = &event;
    json::Object o;
    o.Set("name", json::Value(e->name));
    o.Set("cat", json::Value(e->category));
    o.Set("ph", json::Value(std::string(1, e->ph)));
    o.Set("ts", json::Value(static_cast<int64_t>(e->ts)));
    if (e->ph == 'X') {
      o.Set("dur", json::Value(static_cast<int64_t>(e->dur)));
    }
    o.Set("pid", json::Value(static_cast<int64_t>(1)));
    o.Set("tid", json::Value(e->tid));
    if (e->ph == 'C') {
      json::Object args;
      args.Set("value", json::Value(e->value));
      o.Set("args", json::Value(std::move(args)));
    } else if (e->ph == 'i') {
      o.Set("s", json::Value("t"));  // thread-scoped instant
    }
    trace_events.emplace_back(std::move(o));
  }
  json::Object out;
  out.Set("traceEvents", json::Value(std::move(trace_events)));
  out.Set("displayTimeUnit", json::Value("ms"));
  return json::Value(std::move(out));
}

Status SpanRecorder::WriteTo(const std::string& path) const {
  json::WriteOptions options;
  options.pretty = true;
  return WriteStringToFile(path, json::Write(ToJson(), options));
}

}  // namespace dj::obs
