#ifndef DJ_OBS_METRICS_H_
#define DJ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "json/value.h"

namespace dj::obs {

/// Monotonically increasing event count. Lock-free; safe to bump from any
/// thread.
class Counter {
 public:
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (rows/sec, queue depth). Lock-free.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order; one implicit overflow bucket catches everything above the last
/// bound. Observations are lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// One count per bound plus the trailing overflow bucket.
  std::vector<uint64_t> BucketCounts() const;

  /// Estimated value at quantile `q` in [0, 1], linearly interpolated
  /// within the containing bucket (the classic Prometheus estimate, so
  /// accuracy is bounded by bucket width). Observations in the overflow
  /// bucket report the last bound — the histogram cannot see past it.
  /// Returns -1 when empty or `q` is outside [0, 1].
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Thread-safe registry of named metrics. Get* registers on first use and
/// returns a stable pointer; concurrent callers for the same name get the
/// same instance. Snapshots serialize every registered metric to JSON.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `upper_bounds` is used only when the histogram does not exist yet;
  /// empty means DefaultSecondsBounds().
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> upper_bounds = {});

  /// Lookup without registration; nullptr when absent.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Log-spaced bounds suitable for OP wall times (1ms .. ~100s).
  static std::vector<double> DefaultSecondsBounds();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  json::Value SnapshotJson() const;

  /// Pretty-printed SnapshotJson() to `path` (parent dirs created).
  Status WriteTo(const std::string& path) const;

 private:
  mutable Mutex mutex_{"MetricsRegistry.mutex"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      DJ_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      DJ_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      DJ_GUARDED_BY(mutex_);
};

/// Process-wide registry used by deep layers (the data-plane codecs) that
/// have no natural place to thread a registry pointer through. Returns
/// nullptr when none is installed — callers then skip metric emission at
/// the cost of one relaxed atomic load.
MetricsRegistry* GlobalMetrics();

/// Installs (or, with nullptr, uninstalls) the global registry. The caller
/// keeps ownership and must uninstall before destroying the registry.
void InstallGlobalMetrics(MetricsRegistry* metrics);

}  // namespace dj::obs

#endif  // DJ_OBS_METRICS_H_
