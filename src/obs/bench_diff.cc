#include "obs/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dj::obs {
namespace {

bool ContainsToken(std::string_view key, std::string_view token) {
  return key.find(token) != std::string_view::npos;
}

Result<const json::Object*> MetricsOf(const json::Value& doc,
                                      const char* which) {
  if (!doc.is_object()) {
    return Status::InvalidArgument(std::string(which) +
                                   ": root is not an object");
  }
  const json::Value* bench = doc.as_object().Find("bench");
  if (bench == nullptr || !bench->is_string()) {
    return Status::InvalidArgument(std::string(which) +
                                   ": missing string 'bench'");
  }
  const json::Value* metrics = doc.as_object().Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return Status::InvalidArgument(std::string(which) +
                                   ": missing object 'metrics'");
  }
  return &metrics->as_object();
}

const char* DirectionName(MetricDirection d) {
  switch (d) {
    case MetricDirection::kLowerIsBetter:
      return "lower";
    case MetricDirection::kHigherIsBetter:
      return "higher";
    case MetricDirection::kInformational:
      return "info";
  }
  return "?";
}

}  // namespace

MetricDirection GuessDirection(std::string_view key) {
  // Environment descriptors first: they record *where* the bench ran
  // (thread count, kernel dispatch level, self-check verdicts), not how
  // well, so a host change must never read as a perf regression. The
  // "_ok" rule below would otherwise claim determinism_ok.
  for (const char* token :
       {"hardware_threads", "determinism_ok", "simd_level"}) {
    if (ContainsToken(key, token)) return MetricDirection::kInformational;
  }
  // Higher-is-better tokens first: "speedup_ms" should never exist, but a
  // throughput named "rows_per_sec" contains "_sec" and must not be
  // misread as a timing.
  for (const char* token :
       {"speedup", "per_sec", "throughput", "time_saved", "rows_per",
        "_ok", "win_rate", "accuracy", "f1"}) {
    if (ContainsToken(key, token)) return MetricDirection::kHigherIsBetter;
  }
  for (const char* token :
       {"_ms", "_us", "seconds", "_sec", "_bytes", "rss", "latency"}) {
    if (ContainsToken(key, token)) return MetricDirection::kLowerIsBetter;
  }
  return MetricDirection::kInformational;
}

bool BenchDiffReport::has_regression() const {
  if (!missing_in_current.empty()) return true;
  for (const MetricDelta& d : deltas) {
    if (d.regression) return true;
  }
  return false;
}

std::string BenchDiffReport::ToString() const {
  std::string out = "bench: " + bench + "\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-40s %12s %12s %9s %7s %6s  %s\n",
                "metric", "baseline", "current", "change", "tol",
                "better", "verdict");
  out += buf;
  for (const MetricDelta& d : deltas) {
    const char* verdict =
        d.direction == MetricDirection::kInformational
            ? "-"
            : (d.regression ? "REGRESSED" : "ok");
    std::snprintf(buf, sizeof(buf), "%-40s %12.4f %12.4f %+8.1f%% %6.0f%% %6s  %s\n",
                  d.key.c_str(), d.baseline, d.current, d.degradation * 100,
                  d.tolerance * 100, DirectionName(d.direction), verdict);
    out += buf;
  }
  for (const std::string& key : missing_in_current) {
    out += "  " + key + ": present in baseline, MISSING in current (REGRESSED)\n";
  }
  for (const std::string& key : missing_in_baseline) {
    out += "  " + key + ": new metric (no baseline, not gated)\n";
  }
  return out;
}

Result<BenchDiffReport> BenchDiff(const json::Value& baseline,
                                  const json::Value& current,
                                  const BenchDiffOptions& options) {
  DJ_ASSIGN_OR_RETURN(const json::Object* base_metrics,
                      MetricsOf(baseline, "baseline"));
  DJ_ASSIGN_OR_RETURN(const json::Object* cur_metrics,
                      MetricsOf(current, "current"));
  const std::string& base_bench =
      baseline.as_object().Find("bench")->as_string();
  const std::string& cur_bench = current.as_object().Find("bench")->as_string();
  if (base_bench != cur_bench) {
    return Status::InvalidArgument("bench mismatch: baseline is '" +
                                   base_bench + "', current is '" +
                                   cur_bench + "'");
  }

  BenchDiffReport report;
  report.bench = cur_bench;
  for (const auto& [key, base_value] : base_metrics->entries()) {
    if (!base_value.is_number()) continue;
    const json::Value* cur_value = cur_metrics->Find(key);
    if (cur_value == nullptr || !cur_value->is_number()) {
      report.missing_in_current.push_back(key);
      continue;
    }
    MetricDelta delta;
    delta.key = key;
    delta.baseline = base_value.as_double();
    delta.current = cur_value->as_double();
    auto dir_it = options.direction_overrides.find(key);
    delta.direction = dir_it != options.direction_overrides.end()
                          ? dir_it->second
                          : GuessDirection(key);
    auto tol_it = options.per_metric_tolerance.find(key);
    delta.tolerance = tol_it != options.per_metric_tolerance.end()
                          ? tol_it->second
                          : options.default_tolerance;
    if (delta.direction != MetricDirection::kInformational &&
        std::abs(delta.baseline) > 0) {
      double worse = delta.direction == MetricDirection::kLowerIsBetter
                         ? delta.current - delta.baseline
                         : delta.baseline - delta.current;
      delta.degradation = worse / std::abs(delta.baseline);
      delta.regression = delta.degradation > delta.tolerance;
    }
    report.deltas.push_back(std::move(delta));
  }
  for (const auto& [key, cur_value] : cur_metrics->entries()) {
    if (!cur_value.is_number()) continue;
    if (base_metrics->Find(key) == nullptr) {
      report.missing_in_baseline.push_back(key);
    }
  }
  return report;
}

Result<json::Value> LedgerBaseline(const std::vector<json::Value>& runs,
                                   std::string_view bench) {
  std::map<std::string, std::vector<double>> values;
  size_t matched = 0;
  for (const json::Value& run : runs) {
    auto metrics = MetricsOf(run, "ledger entry");
    if (!metrics.ok()) continue;
    if (run.as_object().Find("bench")->as_string() != bench) continue;
    ++matched;
    for (const auto& [key, value] : metrics.value()->entries()) {
      if (value.is_number()) values[key].push_back(value.as_double());
    }
  }
  if (matched == 0) {
    return Status::NotFound("ledger has no runs of bench '" +
                            std::string(bench) + "'");
  }
  json::Object metrics;
  for (auto& [key, samples] : values) {
    std::sort(samples.begin(), samples.end());
    size_t n = samples.size();
    double median = n % 2 == 1 ? samples[n / 2]
                               : (samples[n / 2 - 1] + samples[n / 2]) / 2;
    metrics.Set(key, json::Value(median));
  }
  json::Object out;
  out.Set("bench", json::Value(std::string(bench)));
  out.Set("paper_ref", json::Value("ledger median"));
  out.Set("schema_version", json::Value(static_cast<int64_t>(1)));
  out.Set("metrics", json::Value(std::move(metrics)));
  return json::Value(std::move(out));
}

}  // namespace dj::obs
