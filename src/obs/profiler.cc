#include "obs/profiler.h"

#include <chrono>
#include <string_view>
#include <utility>

#include "common/file_util.h"
#include "common/thread_introspect.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace dj::obs {

std::string Profiler::Report::CollapsedText() const {
  std::string out;
  for (const auto& [path, count] : collapsed) {
    out += path;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::map<std::string, double> Profiler::Report::OpCpuShares() const {
  std::map<std::string, double> shares;
  if (samples == 0) return shares;
  for (const auto& [path, count] : collapsed) {
    // The innermost "unit:" frame wins: a fused unit nested under
    // executor.run attributes to the unit, not the run.
    std::string op = "(other)";
    size_t pos = 0;
    while (pos != std::string::npos && pos < path.size()) {
      size_t frame_start = pos;
      size_t sep = path.find(';', pos);
      std::string_view frame =
          std::string_view(path).substr(frame_start, sep - frame_start);
      if (frame.rfind("unit:", 0) == 0) {
        op = std::string(frame.substr(5));
      }
      pos = sep == std::string::npos ? std::string::npos : sep + 1;
    }
    shares[op] += static_cast<double>(count);
  }
  for (auto& [op, share] : shares) share /= static_cast<double>(samples);
  return shares;
}

json::Value Profiler::Report::ToJson() const {
  json::Object out;
  out.Set("interval_seconds", json::Value(interval_seconds));
  out.Set("ticks", json::Value(ticks));
  out.Set("samples", json::Value(samples));
  json::Object op_cpu;
  for (const auto& [op, share] : OpCpuShares()) {
    op_cpu.Set(op, json::Value(share));
  }
  out.Set("op_cpu", json::Value(std::move(op_cpu)));
  return json::Value(std::move(out));
}

Profiler::Profiler() : Profiler(Options()) {}

Profiler::Profiler(Options options) : options_(options) {
  if (options_.interval_seconds <= 0) options_.interval_seconds = 0.002;
}

Profiler::~Profiler() { Stop(); }

void Profiler::Start() {
  if (running_.exchange(true)) return;
  introspect::AddUser();
  ticker_ = std::thread([this] { TickerLoop(); });
}

void Profiler::Stop() {
  if (!running_.exchange(false)) return;
  if (ticker_.joinable()) ticker_.join();
  introspect::RemoveUser();
}

Profiler::Report Profiler::Snapshot() const {
  Report report;
  report.interval_seconds = options_.interval_seconds;
  MutexLock lock(&mutex_);
  report.ticks = ticks_;
  report.samples = samples_;
  report.collapsed = collapsed_;
  return report;
}

Status Profiler::WriteCollapsed(const std::string& path) const {
  return WriteStringToFile(path, Snapshot().CollapsedText());
}

void Profiler::TickerLoop() {
  introspect::CurrentThreadState()->SetRole("profiler.ticker");
  std::vector<std::string> stack;
  while (running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.interval_seconds));

    uint64_t tick_samples = 0;
    std::vector<std::pair<std::string, uint64_t>> tick_paths;
    for (introspect::ThreadState* state :
         introspect::ThreadRegistry::Global().Snapshot()) {
      if (!state->alive() || !state->busy()) continue;
      if (!state->ReadStack(&stack)) continue;  // stack wouldn't hold still
      std::string path;
      if (stack.empty()) {
        path = "(untagged)";
      } else {
        for (const std::string& frame : stack) {
          if (!path.empty()) path += ';';
          path += frame;
        }
      }
      tick_paths.emplace_back(std::move(path), 1);
      ++tick_samples;
    }

    {
      MutexLock lock(&mutex_);
      ++ticks_;
      samples_ += tick_samples;
      for (auto& [path, count] : tick_paths) collapsed_[path] += count;
    }

    if (MetricsRegistry* m = GlobalMetrics(); m != nullptr) {
      m->GetCounter("profiler.ticks")->Increment();
      if (tick_samples > 0) {
        m->GetCounter("profiler.samples")->Add(tick_samples);
      }
    }
    if (options_.emit_trace_ticks) {
      if (SpanRecorder* r = GlobalRecorder(); r != nullptr) {
        r->EmitInstant("profile:tick", "profile", r->NowMicros());
      }
    }
  }
}

}  // namespace dj::obs
