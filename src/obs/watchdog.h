#ifndef DJ_OBS_WATCHDOG_H_
#define DJ_OBS_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dj::obs {

/// Heartbeat-based stall watchdog: answers "is this run stuck?" without a
/// human attaching a debugger. Worker threads beat a per-thread heartbeat
/// (common/thread_introspect.h) at natural progress points — executor unit
/// boundaries, ThreadPool task dispatch, io/compress gather joins — and a
/// watchdog thread polls those beats. A thread that is *busy* but has not
/// beaten for `stall_seconds` triggers a live-state dump to stderr:
///
///   * per-thread role, span path, seconds since last beat, queue depth;
///   * the dj::Mutex set each thread holds (mirrored from the lock
///     acquisition hooks, i.e. the lock_order instrumentation);
///   * process RSS.
///
/// plus a "watchdog.stalls" counter bump and a "watchdog:stall" trace
/// instant. The run is NOT killed — the dump is diagnosis, not punishment;
/// a legitimately slow OP prints one dump per stall episode and continues.
/// Idle threads (blocked on an empty queue) never count as stalled.
///
/// Every poll also emits a "watchdog:beat" trace instant, so a trace file
/// proves the watchdog was alive even when nothing stalled (validated by
/// dj_trace_check --require-profile).
class Watchdog {
 public:
  struct Options {
    double stall_seconds = 30.0;
    /// 0 = derive from stall_seconds (quarter, clamped to [2ms, 1s]), so
    /// detection latency stays within ~1.25x the threshold.
    double poll_seconds = 0;
    bool emit_trace_beats = true;
  };

  /// Parses a DJ_WATCHDOG / --watchdog spec:
  ///   "off"                      -> *enabled = false
  ///   "<seconds>"  (e.g. "30")   -> stall threshold
  ///   "stall=S;poll=P"           -> explicit threshold + poll interval
  /// Returns InvalidArgument on junk; `out` keeps defaults for absent keys.
  static Status ParseSpec(std::string_view spec, Options* out, bool* enabled);

  Watchdog();
  explicit Watchdog(Options options);
  ~Watchdog();  ///< stops the poller if still running

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void Start();
  void Stop();

  double stall_seconds() const { return options_.stall_seconds; }

  /// Stall episodes reported so far (one per thread per episode).
  uint64_t stall_count() const {
    return stall_count_.load(std::memory_order_relaxed);
  }

  /// The most recent dump text (empty if nothing stalled) — test hook; the
  /// authoritative sink is stderr.
  std::string LastDump() const;

 private:
  void PollLoop();
  /// One poll pass split out for determinism in tests.
  void PollOnce(uint64_t now_micros);

  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> stall_count_{0};
  std::thread poller_;
  mutable Mutex mutex_{"Watchdog.mutex"};
  std::string last_dump_ DJ_GUARDED_BY(mutex_);
  /// thread-index -> beat count at last report, so one stall episode is
  /// reported once instead of on every poll.
  std::map<uint64_t, uint64_t> reported_ DJ_GUARDED_BY(mutex_);
};

}  // namespace dj::obs

#endif  // DJ_OBS_WATCHDOG_H_
