#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/file_util.h"
#include "common/lock_order.h"
#include "common/sched_point.h"
#include "json/writer.h"

namespace dj::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double v) {
  size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

double Histogram::Quantile(double q) const {
  if (q < 0 || q > 1) return -1;
  std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return -1;
  // Rank of the target observation (1-based, rounded up so p95 of three
  // observations is the third); q=0 maps to the first one.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    if (i >= bounds_.size()) return bounds_.empty() ? -1 : bounds_.back();
    double lower = i == 0 ? 0 : bounds_[i - 1];
    double upper = bounds_[i];
    double within = (static_cast<double>(rank - seen)) /
                    static_cast<double>(counts[i]);
    return lower + (upper - lower) * within;
  }
  return bounds_.empty() ? -1 : bounds_.back();
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> upper_bounds) {
  MutexLock lock(&mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = DefaultSecondsBounds();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return it->second.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  MutexLock lock(&mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  MutexLock lock(&mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  MutexLock lock(&mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<double> MetricsRegistry::DefaultSecondsBounds() {
  return {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0};
}

json::Value MetricsRegistry::SnapshotJson() const {
  MutexLock lock(&mutex_);
  json::Object counters;
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, json::Value(counter->value()));
  }
  json::Object gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, json::Value(gauge->value()));
  }
  json::Object histograms;
  for (const auto& [name, histogram] : histograms_) {
    json::Object h;
    json::Array bounds;
    for (double b : histogram->bounds()) bounds.emplace_back(b);
    json::Array buckets;
    for (uint64_t c : histogram->BucketCounts()) buckets.emplace_back(c);
    h.Set("bounds", json::Value(std::move(bounds)));
    h.Set("buckets", json::Value(std::move(buckets)));
    h.Set("count", json::Value(histogram->count()));
    h.Set("sum", json::Value(histogram->sum()));
    h.Set("p50", json::Value(histogram->Quantile(0.50)));
    h.Set("p95", json::Value(histogram->Quantile(0.95)));
    h.Set("p99", json::Value(histogram->Quantile(0.99)));
    histograms.Set(name, json::Value(std::move(h)));
  }
  json::Object out;
  out.Set("counters", json::Value(std::move(counters)));
  out.Set("gauges", json::Value(std::move(gauges)));
  out.Set("histograms", json::Value(std::move(histograms)));
  return json::Value(std::move(out));
}

Status MetricsRegistry::WriteTo(const std::string& path) const {
  json::WriteOptions options;
  options.pretty = true;
  return WriteStringToFile(path, json::Write(SnapshotJson(), options));
}

namespace {
std::atomic<MetricsRegistry*> g_global_metrics{nullptr};
}  // namespace

MetricsRegistry* GlobalMetrics() {
  return g_global_metrics.load(std::memory_order_acquire);
}

void InstallGlobalMetrics(MetricsRegistry* metrics) {
  g_global_metrics.store(metrics, std::memory_order_release);
  // Bridge the concurrency toolkit (which lives below obs in the dependency
  // graph and cannot name a MetricsRegistry) onto the installed registry:
  // lock-order inversions and schedule perturbations become counters. The
  // callbacks re-resolve GlobalMetrics() at event time, so a stale registry
  // pointer is never captured; both events are rare, so the name lookup is
  // not a hot path. Re-entrancy is safe: the tracker and the sched registry
  // both suppress their own probes while running a callback.
  if (metrics != nullptr) {
    LockOrderRegistry::Global().SetOnInversion(
        [](const LockOrderRegistry::Inversion&) {
          if (MetricsRegistry* m = GlobalMetrics(); m != nullptr) {
            m->GetCounter("lockorder.inversions")->Increment();
          }
        });
    sched::SchedRegistry::Global().SetOnPerturb([] {
      if (MetricsRegistry* m = GlobalMetrics(); m != nullptr) {
        m->GetCounter("sched.perturbations")->Increment();
      }
    });
  } else {
    LockOrderRegistry::Global().SetOnInversion(nullptr);
    sched::SchedRegistry::Global().SetOnPerturb(nullptr);
  }
}

}  // namespace dj::obs
