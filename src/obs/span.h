#ifndef DJ_OBS_SPAN_H_
#define DJ_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_introspect.h"
#include "json/value.h"

namespace dj::obs {

/// Low-overhead recorder of Chrome trace events ("trace event format",
/// loadable in chrome://tracing and Perfetto). Each emitting thread appends
/// to its own buffer — registration takes the recorder mutex once per
/// thread, after which appends contend only on the (practically
/// uncontended) per-thread mutex. Timestamps are microseconds since the
/// recorder's construction.
class SpanRecorder {
 public:
  SpanRecorder();
  ~SpanRecorder();

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Microseconds elapsed since this recorder was created.
  uint64_t NowMicros() const;

  /// Complete event (ph "X") on the calling thread's lane.
  void EmitComplete(std::string_view name, std::string_view category,
                    uint64_t ts_micros, uint64_t dur_micros);

  /// Complete event on an explicit lane — used for modeled timelines
  /// (e.g. one lane per simulated cluster shard).
  void EmitCompleteOnLane(std::string_view name, std::string_view category,
                          uint64_t ts_micros, uint64_t dur_micros,
                          int64_t lane_tid);

  /// Counter event (ph "C"): a named time series Perfetto renders as a
  /// track, e.g. resource-monitor RSS samples.
  void EmitCounter(std::string_view series, uint64_t ts_micros, double value);

  /// Instant event (ph "i"), e.g. a cache hit.
  void EmitInstant(std::string_view name, std::string_view category,
                   uint64_t ts_micros);

  /// Total events recorded so far (takes the registration mutex).
  size_t EventCount() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"}; events sorted by ts.
  json::Value ToJson() const;

  /// Pretty-printed ToJson() to `path` (parent dirs created).
  Status WriteTo(const std::string& path) const;

 private:
  struct Event {
    char ph;            // 'X', 'C', or 'i'
    std::string name;
    std::string category;
    uint64_t ts = 0;
    uint64_t dur = 0;   // 'X' only
    int64_t tid = 0;
    double value = 0;   // 'C' only
  };
  struct ThreadBuffer {
    Mutex mu{"SpanRecorder.buffer"};
    std::vector<Event> events DJ_GUARDED_BY(mu);
    int64_t tid = 0;  ///< written once at registration, then owner-read only
  };

  ThreadBuffer* LocalBuffer() DJ_EXCLUDES(mutex_);
  void Append(Event event);

  uint64_t id_;  ///< process-unique, keys the thread-local buffer cache
  std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mutex_{"SpanRecorder.registry"};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ DJ_GUARDED_BY(mutex_);
  std::atomic<int64_t> next_tid_{1};
};

/// Process-wide recorder used by the DJ_OBS_SPAN macro so deep layers (OP
/// batch loops) can emit spans without plumbing a pointer through every
/// signature. Returns nullptr when none is installed — the Span guard is
/// then a no-op costing one relaxed atomic load.
SpanRecorder* GlobalRecorder();

/// Installs (or, with nullptr, uninstalls) the global recorder. The caller
/// keeps ownership and must uninstall before destroying the recorder.
void InstallGlobalRecorder(SpanRecorder* recorder);

/// RAII span guard: records a complete event covering its own lifetime.
/// With a null recorder every member is a no-op. Independently of the
/// recorder, the guard pushes its name onto the calling thread's
/// introspection tag stack while a profiler/watchdog is attached — this is
/// how the sampling profiler sees span paths without unwinding.
class Span {
 public:
  Span(SpanRecorder* recorder, std::string_view name,
       std::string_view category = "dj")
      : tag_(name), recorder_(recorder) {
    if (recorder_ != nullptr) {
      name_ = name;
      category_ = category;
      start_ = recorder_->NowMicros();
    }
  }
  ~Span() {
    if (recorder_ != nullptr) {
      // srclint-allow(dynamic-name): forwards the name captured at the Span constructor site
      recorder_->EmitComplete(name_, category_, start_,
                              recorder_->NowMicros() - start_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  introspect::SpanTag tag_;
  SpanRecorder* recorder_;
  std::string name_;
  std::string category_;
  uint64_t start_ = 0;
};

}  // namespace dj::obs

#define DJ_OBS_CONCAT_INNER(a, b) a##b
#define DJ_OBS_CONCAT(a, b) DJ_OBS_CONCAT_INNER(a, b)

/// Scoped span against the globally installed recorder (no-op when none).
#define DJ_OBS_SPAN(name)                                  \
  ::dj::obs::Span DJ_OBS_CONCAT(dj_obs_span_, __LINE__)(   \
      ::dj::obs::GlobalRecorder(), (name))

#endif  // DJ_OBS_SPAN_H_
