#include "baseline/naive_pipeline.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "data/dataset.h"

namespace dj::baseline {
namespace {

uint64_t SamplesBytes(const std::vector<data::Sample>& samples) {
  uint64_t total = 0;
  for (const data::Sample& s : samples) {
    total += data::ApproxValueBytes(json::Value(s.fields()));
  }
  return total;
}

/// Runs one row-local OP on a single sample by round-tripping it through a
/// one-row table (the per-record conversion overhead of script pipelines).
Status ApplyRowOp(ops::Op* op, data::Sample* sample) {
  data::Dataset one = data::Dataset::FromSamples({*sample});
  one.EnsureColumn(data::kStatsField);
  data::RowRef row = one.Row(0);
  switch (op->kind()) {
    case ops::OpKind::kMapper: {
      auto* mapper = static_cast<ops::Mapper*>(op);
      DJ_RETURN_IF_ERROR(mapper->ProcessRow(row, nullptr));
      *sample = one.MaterializeRow(0);
      return Status::Ok();
    }
    case ops::OpKind::kFilter: {
      auto* filter = static_cast<ops::Filter*>(op);
      DJ_RETURN_IF_ERROR(filter->ComputeStats(row, nullptr));
      DJ_ASSIGN_OR_RETURN(bool keep, filter->KeepRow(row));
      if (keep) {
        *sample = one.MaterializeRow(0);
      } else {
        *sample = data::Sample();  // tombstone
      }
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument("not a row-local op");
  }
}

}  // namespace

Result<std::vector<data::Sample>> NaivePipeline::Run(
    std::vector<data::Sample> samples,
    const std::vector<std::unique_ptr<ops::Op>>& ops, Report* report) {
  Stopwatch watch;
  Report local;
  Report* rep = report != nullptr ? report : &local;
  rep->rows_in = samples.size();
  rep->peak_row_bytes = SamplesBytes(samples);

  std::optional<ThreadPool> pool;
  if (num_workers_ > 1) pool.emplace(static_cast<size_t>(num_workers_));

  for (const auto& op : ops) {
    if (op->kind() == ops::OpKind::kDeduplicator) {
      // Scripts materialize the whole dataset for dedup passes.
      data::Dataset full = data::Dataset::FromSamples(samples);
      full.EnsureColumn(data::kStatsField);
      auto* dedup = static_cast<ops::Deduplicator*>(op.get());
      auto result = dedup->Deduplicate(std::move(full),
                                       pool ? &*pool : nullptr, nullptr);
      if (!result.ok()) return result.status();
      samples = result.value().ToSamples();
    } else {
      // Eager stage copy: a fresh output list per OP.
      std::vector<data::Sample> next(samples);  // the per-stage copy
      Mutex error_mutex{"NaivePipeline.first_error"};
      Status first_error;
      auto run_range = [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          Status s = ApplyRowOp(op.get(), &next[i]);
          if (!s.ok()) {
            MutexLock lock(&error_mutex);
            if (first_error.ok()) first_error = std::move(s);
            return;
          }
        }
      };
      if (pool) {
        pool->ParallelFor(next.size(), run_range);
      } else {
        run_range(0, next.size());
      }
      DJ_RETURN_IF_ERROR(first_error);
      // Drop tombstones from filters.
      std::vector<data::Sample> survivors;
      survivors.reserve(next.size());
      for (data::Sample& s : next) {
        if (!s.fields().empty()) survivors.push_back(std::move(s));
      }
      // Peak memory: old stage + new stage alive simultaneously.
      rep->peak_row_bytes = std::max(
          rep->peak_row_bytes, SamplesBytes(samples) + SamplesBytes(survivors));
      samples = std::move(survivors);
    }
  }
  rep->rows_out = samples.size();
  rep->seconds = watch.ElapsedSeconds();
  return samples;
}

}  // namespace dj::baseline
