#ifndef DJ_BASELINE_NAIVE_PIPELINE_H_
#define DJ_BASELINE_NAIVE_PIPELINE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "data/sample.h"
#include "ops/op_base.h"

namespace dj::baseline {

/// Row-oriented, eager baseline pipeline — the stand-in for the
/// RedPajama-style per-dataset Python scripts of Fig. 8. It reproduces
/// their structural inefficiencies on purpose:
///
///  * row store: every sample is a standalone dict-like object (Sample),
///    re-wrapped into a one-row table for each OP invocation — the "plain
///    dict object" overhead the paper calls out;
///  * eager materialization: the full intermediate sample list is copied
///    after every OP (scripts write each stage out);
///  * no context sharing: every OP re-tokenizes from scratch;
///  * no fusion/reordering/caching.
///
/// It runs the very same OP implementations, so any speedup of the
/// columnar Executor over this pipeline is attributable to the system
/// design, not to different operator code.
class NaivePipeline {
 public:
  struct Report {
    double seconds = 0;
    size_t rows_in = 0;
    size_t rows_out = 0;
    uint64_t peak_row_bytes = 0;  ///< approx peak of live sample copies
  };

  explicit NaivePipeline(int num_workers = 1) : num_workers_(num_workers) {}

  Result<std::vector<data::Sample>> Run(
      std::vector<data::Sample> samples,
      const std::vector<std::unique_ptr<ops::Op>>& ops,
      Report* report = nullptr);

 private:
  int num_workers_;
};

}  // namespace dj::baseline

#endif  // DJ_BASELINE_NAIVE_PIPELINE_H_
