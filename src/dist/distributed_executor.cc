#include "dist/distributed_executor.h"

#include <algorithm>
#include <optional>

#include "common/random.h"
#include "common/sched_point.h"
#include "common/stopwatch.h"

namespace dj::dist {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

/// Splits a pipeline into alternating segments of row-local OPs
/// (Mappers/Filters — embarrassingly parallel across shards) and
/// dataset-level OPs (Deduplicators — require a global view / shuffle).
struct Segment {
  std::vector<ops::Op*> row_local;
  ops::Op* global = nullptr;  // a deduplicator
};

std::vector<Segment> SplitSegments(
    const std::vector<std::unique_ptr<ops::Op>>& ops) {
  std::vector<Segment> segments;
  Segment current;
  for (const auto& op : ops) {
    if (op->kind() == ops::OpKind::kDeduplicator) {
      if (!current.row_local.empty()) {
        segments.push_back(std::move(current));
        current = Segment();
      }
      Segment global;
      global.global = op.get();
      segments.push_back(std::move(global));
    } else {
      current.row_local.push_back(op.get());
    }
  }
  if (!current.row_local.empty()) segments.push_back(std::move(current));
  return segments;
}

std::vector<data::Dataset> Shard(const data::Dataset& ds, size_t n,
                                 ThreadPool* pool) {
  if (n == 0) n = 1;
  std::vector<data::Dataset> shards(n);
  size_t rows = ds.NumRows();
  size_t per = (rows + n - 1) / std::max<size_t>(n, 1);
  // Slices are independent row-range copies, so they cut in parallel; the
  // shard boundaries depend only on (rows, n), never on the pool.
  auto slice_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      size_t lo = std::min(i * per, rows);
      size_t hi = std::min(lo + per, rows);
      shards[i] = ds.Slice(lo, hi);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && n > 1) {
    pool->ParallelFor(n, slice_range);
    DJ_SCHED_POINT("dist.shard.gather");
  } else {
    slice_range(0, n);
  }
  return shards;
}

data::Dataset Merge(std::vector<data::Dataset>* shards) {
  data::Dataset out;
  for (data::Dataset& shard : *shards) out.Concat(std::move(shard));
  shards->clear();
  return out;
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kSingleNode:
      return "data-juicer";
    case Backend::kRay:
      return "dj-on-ray";
    case Backend::kBeam:
      return "dj-on-beam";
  }
  return "unknown";
}

DistributedExecutor::DistributedExecutor(Options options)
    : options_(options) {}

Result<data::Dataset> DistributedExecutor::Run(
    data::Dataset dataset, const std::vector<std::unique_ptr<ops::Op>>& ops,
    DistributedReport* report) {
  const ClusterOptions& cluster = options_.cluster;
  size_t nodes = std::max<size_t>(cluster.num_nodes, 1);
  bool distributed = options_.backend != Backend::kSingleNode;
  if (!distributed) nodes = 1;

  DistributedReport local;
  DistributedReport* rep = report != nullptr ? report : &local;
  rep->backend = BackendName(options_.backend);
  rep->num_nodes = nodes;
  rep->rows_in = dataset.NumRows();
  rep->input_bytes = dataset.ApproxMemoryBytes();

  double input_mib = static_cast<double>(rep->input_bytes) / kMiB;
  double node_speedup =
      EffectiveSpeedup(cluster.workers_per_node, cluster.parallel_efficiency);

  // Failure model: one RNG for the whole run, consumed in shard order, so a
  // seed fully determines which attempts die (single-node runs have no
  // worker loss to model).
  std::optional<Rng> failure_rng;
  if (distributed && cluster.node_failure_probability > 0) {
    failure_rng.emplace(cluster.failure_seed);
  }

  // Modeled-timeline emission: `cursor` advances in modeled seconds from
  // `base_ts`; every lane event is placed on that clock, so the exported
  // trace shows the simulated cluster schedule, not local wall time.
  const uint64_t base_ts =
      options_.spans != nullptr ? options_.spans->NowMicros() : 0;
  double cursor = 0;
  // Lane span names are assembled per shard/segment; the families are:
  // srclint-declare(span): sched:*
  // srclint-declare(span): load:*
  // srclint-declare(span): seg*
  // srclint-declare(span): backoff:*
  auto emit_lane = [&](const std::string& name, int64_t lane, double start_s,
                       double dur_s) {
    if (options_.spans == nullptr) return;
    options_.spans->EmitCompleteOnLane(
        name, "dist", base_ts + static_cast<uint64_t>(start_s * 1e6),
        static_cast<uint64_t>(dur_s * 1e6), lane);
  };

  // --- Modeled data loading ---------------------------------------------
  switch (options_.backend) {
    case Backend::kSingleNode:
      // Node-local disk read, one stream (no NAS hop).
      rep->load_seconds = input_mib * cluster.local_load_seconds_per_mib;
      break;
    case Backend::kRay:
      // Every node pulls its own shard from shared storage concurrently.
      rep->load_seconds = (input_mib / static_cast<double>(nodes)) *
                          cluster.load_seconds_per_mib;
      break;
    case Backend::kBeam:
      // The paper's measured bottleneck: the Beam loading component is a
      // serial driver-side stage — it does not shrink with nodes.
      rep->load_seconds = input_mib * cluster.load_seconds_per_mib;
      break;
  }
  if (distributed) {
    rep->overhead_seconds =
        cluster.scheduling_overhead_seconds * static_cast<double>(nodes);
    emit_lane("sched:" + std::string(rep->backend), kDriverLane, cursor,
              rep->overhead_seconds);
    cursor += rep->overhead_seconds;
  }
  if (options_.backend == Backend::kRay) {
    // Every node loads its shard concurrently: one lane event per node.
    for (size_t n = 0; n < nodes; ++n) {
      emit_lane("load:shard" + std::to_string(n),
                kDriverLane + 1 + static_cast<int64_t>(n), cursor,
                rep->load_seconds);
    }
  } else {
    // Single-stream (local disk or the serial Beam driver stage).
    emit_lane("load:" + std::string(rep->backend), kDriverLane, cursor,
              rep->load_seconds);
  }
  cursor += rep->load_seconds;

  // --- Real processing + modeled compute time ---------------------------
  core::Executor::Options exec_options;
  exec_options.num_workers = 1;  // measure single-thread shard time
  exec_options.op_fusion = options_.op_fusion;
  exec_options.op_reorder = options_.op_reorder;
  core::Executor shard_executor(exec_options);

  std::vector<Segment> segments = SplitSegments(ops);
  std::vector<data::Dataset> shards = Shard(dataset, nodes,
                                            options_.io_pool);
  dataset = data::Dataset();  // released; state lives in shards

  for (size_t seg = 0; seg < segments.size(); ++seg) {
    const Segment& segment = segments[seg];
    const std::string seg_tag = "seg" + std::to_string(seg);
    if (segment.global == nullptr) {
      // Row-local segment: every node processes its shard independently.
      // Under the failure model, a shard task may die (probability drawn
      // from the seeded RNG per attempt); the dead attempt's partial work
      // and an exponential backoff are charged to the modeled timeline,
      // and the task is requeued onto the next surviving node's lane. The
      // real computation below still runs exactly once per shard.
      double slowest_node = 0;
      for (size_t n = 0; n < shards.size(); ++n) {
        data::Dataset& shard = shards[n];
        Stopwatch watch;
        auto processed =
            shard_executor.Run(std::move(shard), segment.row_local, nullptr);
        if (!processed.ok()) return processed.status();
        shard = std::move(processed).value();
        double measured = watch.ElapsedSeconds();
        rep->measured_compute_seconds += measured;
        double modeled = measured / node_speedup;

        double shard_start = 0;  // offset of this task's final attempt
        int64_t lane = kDriverLane + 1 + static_cast<int64_t>(n);
        if (distributed && failure_rng.has_value()) {
          int attempt = 0;
          while (failure_rng->Bernoulli(cluster.node_failure_probability)) {
            if (attempt >= cluster.max_retries_per_shard) {
              return Status::Aborted(
                  "dist: shard " + std::to_string(n) + " of segment " +
                  seg_tag + " failed after " + std::to_string(attempt + 1) +
                  " attempts (node_failure_probability=" +
                  std::to_string(cluster.node_failure_probability) + ")");
            }
            // The attempt dies partway through its work; the partition is
            // requeued on the next node's lane after an exponential
            // backoff.
            double died_after = modeled * 0.5;
            emit_lane(seg_tag + ":shard" + std::to_string(n) + ":died",
                      lane, cursor + shard_start, died_after);
            double backoff = cluster.retry_backoff_seconds *
                             static_cast<double>(uint64_t{1} << attempt);
            shard_start += died_after;
            lane = kDriverLane + 1 +
                   static_cast<int64_t>((n + 1 + static_cast<size_t>(attempt)) %
                                        nodes);
            emit_lane("backoff:shard" + std::to_string(n), lane,
                      cursor + shard_start, backoff);
            shard_start += backoff;
            ++attempt;
            ++rep->node_failures;
            ++rep->retries;
            rep->backoff_seconds += backoff;
          }
        }
        emit_lane(seg_tag + ":ops", lane, cursor + shard_start, modeled);
        slowest_node = std::max(slowest_node, shard_start + modeled);
      }
      rep->compute_seconds += slowest_node;
      cursor += slowest_node;  // barrier: next stage waits for the slowest
    } else {
      // Dataset-level OP: shuffle all shards to the driver, run globally,
      // re-shard. The shuffle cost is paid on the network for distributed
      // backends.
      if (distributed && nodes > 1) {
        double current_mib = 0;
        for (const data::Dataset& shard : shards) {
          current_mib += static_cast<double>(shard.ApproxMemoryBytes()) / kMiB;
        }
        double shuffle = current_mib * cluster.network_seconds_per_mib;
        rep->shuffle_seconds += shuffle;
        emit_lane(seg_tag + ":shuffle", kDriverLane, cursor, shuffle);
        cursor += shuffle;
      }
      data::Dataset merged = Merge(&shards);
      std::vector<ops::Op*> single{segment.global};
      Stopwatch watch;
      auto processed = shard_executor.Run(std::move(merged), single, nullptr);
      if (!processed.ok()) return processed.status();
      double measured = watch.ElapsedSeconds();
      rep->measured_compute_seconds += measured;
      double modeled = measured / node_speedup;
      rep->compute_seconds += modeled;
      emit_lane(seg_tag + ":" + segment.global->name(), kDriverLane, cursor,
                modeled);
      cursor += modeled;
      shards = Shard(processed.value(), nodes, options_.io_pool);
    }
  }

  data::Dataset result = Merge(&shards);
  rep->rows_out = result.NumRows();
  rep->total_seconds = rep->load_seconds + rep->compute_seconds +
                       rep->shuffle_seconds + rep->overhead_seconds;
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    m->GetCounter("dist.runs")->Increment();
    m->GetCounter("dist.shards_processed")->Add(nodes);
    m->GetGauge("dist.load_seconds")->Set(rep->load_seconds);
    m->GetGauge("dist.compute_seconds")->Set(rep->compute_seconds);
    m->GetGauge("dist.shuffle_seconds")->Set(rep->shuffle_seconds);
    m->GetGauge("dist.overhead_seconds")->Set(rep->overhead_seconds);
    m->GetGauge("dist.total_seconds")->Set(rep->total_seconds);
    if (rep->node_failures > 0 || rep->retries > 0) {
      m->GetCounter("dist.node_failures")->Add(rep->node_failures);
      m->GetCounter("dist.retries")->Add(rep->retries);
      m->GetGauge("dist.backoff_seconds")->Set(rep->backoff_seconds);
    }
  }
  return result;
}

}  // namespace dj::dist
