#include "dist/distributed_executor.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace dj::dist {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

/// Splits a pipeline into alternating segments of row-local OPs
/// (Mappers/Filters — embarrassingly parallel across shards) and
/// dataset-level OPs (Deduplicators — require a global view / shuffle).
struct Segment {
  std::vector<ops::Op*> row_local;
  ops::Op* global = nullptr;  // a deduplicator
};

std::vector<Segment> SplitSegments(
    const std::vector<std::unique_ptr<ops::Op>>& ops) {
  std::vector<Segment> segments;
  Segment current;
  for (const auto& op : ops) {
    if (op->kind() == ops::OpKind::kDeduplicator) {
      if (!current.row_local.empty()) {
        segments.push_back(std::move(current));
        current = Segment();
      }
      Segment global;
      global.global = op.get();
      segments.push_back(std::move(global));
    } else {
      current.row_local.push_back(op.get());
    }
  }
  if (!current.row_local.empty()) segments.push_back(std::move(current));
  return segments;
}

std::vector<data::Dataset> Shard(const data::Dataset& ds, size_t n) {
  std::vector<data::Dataset> shards;
  if (n == 0) n = 1;
  size_t rows = ds.NumRows();
  size_t per = (rows + n - 1) / std::max<size_t>(n, 1);
  for (size_t i = 0; i < n; ++i) {
    size_t begin = std::min(i * per, rows);
    size_t end = std::min(begin + per, rows);
    shards.push_back(ds.Slice(begin, end));
  }
  return shards;
}

data::Dataset Merge(std::vector<data::Dataset>* shards) {
  data::Dataset out;
  for (data::Dataset& shard : *shards) out.Concat(shard);
  shards->clear();
  return out;
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kSingleNode:
      return "data-juicer";
    case Backend::kRay:
      return "dj-on-ray";
    case Backend::kBeam:
      return "dj-on-beam";
  }
  return "unknown";
}

DistributedExecutor::DistributedExecutor(Options options)
    : options_(options) {}

Result<data::Dataset> DistributedExecutor::Run(
    data::Dataset dataset, const std::vector<std::unique_ptr<ops::Op>>& ops,
    DistributedReport* report) {
  const ClusterOptions& cluster = options_.cluster;
  size_t nodes = std::max<size_t>(cluster.num_nodes, 1);
  bool distributed = options_.backend != Backend::kSingleNode;
  if (!distributed) nodes = 1;

  DistributedReport local;
  DistributedReport* rep = report != nullptr ? report : &local;
  rep->backend = BackendName(options_.backend);
  rep->num_nodes = nodes;
  rep->rows_in = dataset.NumRows();
  rep->input_bytes = dataset.ApproxMemoryBytes();

  double input_mib = static_cast<double>(rep->input_bytes) / kMiB;
  double node_speedup =
      EffectiveSpeedup(cluster.workers_per_node, cluster.parallel_efficiency);

  // --- Modeled data loading ---------------------------------------------
  switch (options_.backend) {
    case Backend::kSingleNode:
      // Node-local disk read, one stream (no NAS hop).
      rep->load_seconds = input_mib * cluster.local_load_seconds_per_mib;
      break;
    case Backend::kRay:
      // Every node pulls its own shard from shared storage concurrently.
      rep->load_seconds = (input_mib / static_cast<double>(nodes)) *
                          cluster.load_seconds_per_mib;
      break;
    case Backend::kBeam:
      // The paper's measured bottleneck: the Beam loading component is a
      // serial driver-side stage — it does not shrink with nodes.
      rep->load_seconds = input_mib * cluster.load_seconds_per_mib;
      break;
  }
  if (distributed) {
    rep->overhead_seconds =
        cluster.scheduling_overhead_seconds * static_cast<double>(nodes);
  }

  // --- Real processing + modeled compute time ---------------------------
  core::Executor::Options exec_options;
  exec_options.num_workers = 1;  // measure single-thread shard time
  exec_options.op_fusion = options_.op_fusion;
  exec_options.op_reorder = options_.op_reorder;
  core::Executor shard_executor(exec_options);

  std::vector<Segment> segments = SplitSegments(ops);
  std::vector<data::Dataset> shards = Shard(dataset, nodes);
  dataset = data::Dataset();  // released; state lives in shards

  for (const Segment& segment : segments) {
    if (segment.global == nullptr) {
      // Row-local segment: every node processes its shard independently.
      double slowest_node = 0;
      for (data::Dataset& shard : shards) {
        Stopwatch watch;
        auto processed =
            shard_executor.Run(std::move(shard), segment.row_local, nullptr);
        if (!processed.ok()) return processed.status();
        shard = std::move(processed).value();
        double measured = watch.ElapsedSeconds();
        rep->measured_compute_seconds += measured;
        slowest_node = std::max(slowest_node, measured / node_speedup);
      }
      rep->compute_seconds += slowest_node;
    } else {
      // Dataset-level OP: shuffle all shards to the driver, run globally,
      // re-shard. The shuffle cost is paid on the network for distributed
      // backends.
      if (distributed && nodes > 1) {
        double current_mib = 0;
        for (const data::Dataset& shard : shards) {
          current_mib += static_cast<double>(shard.ApproxMemoryBytes()) / kMiB;
        }
        rep->shuffle_seconds +=
            current_mib * cluster.network_seconds_per_mib;
      }
      data::Dataset merged = Merge(&shards);
      std::vector<ops::Op*> single{segment.global};
      Stopwatch watch;
      auto processed = shard_executor.Run(std::move(merged), single, nullptr);
      if (!processed.ok()) return processed.status();
      double measured = watch.ElapsedSeconds();
      rep->measured_compute_seconds += measured;
      rep->compute_seconds += measured / node_speedup;
      shards = Shard(processed.value(), nodes);
    }
  }

  data::Dataset result = Merge(&shards);
  rep->rows_out = result.NumRows();
  rep->total_seconds = rep->load_seconds + rep->compute_seconds +
                       rep->shuffle_seconds + rep->overhead_seconds;
  return result;
}

}  // namespace dj::dist
