#ifndef DJ_DIST_DISTRIBUTED_EXECUTOR_H_
#define DJ_DIST_DISTRIBUTED_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/executor.h"
#include "data/dataset.h"
#include "dist/cluster.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "ops/op_base.h"

namespace dj::dist {

/// Distributed backends (paper Sec. 7 "Optimized Scalability" / Fig. 10).
///
///  kSingleNode — the native executor: local load, no cluster overhead.
///  kRay        — Ray-style: every node loads & processes its own shard in
///                parallel; dataset-level OPs (Deduplicators) shuffle to the
///                driver. Scales with nodes.
///  kBeam       — Beam+Flink-style as measured in the paper: the data
///                loading component is driver-side and serial, so added
///                nodes only parallelize compute; loading dominates and the
///                total stays flat (the paper's observed bottleneck).
enum class Backend { kSingleNode, kRay, kBeam };

const char* BackendName(Backend backend);

/// Runs an OP pipeline over a dataset on a simulated cluster. Processing is
/// real (sharded through core::Executor, identical results to single-node);
/// the cluster wall-clock is modeled per ClusterOptions — see cluster.h.
class DistributedExecutor {
 public:
  struct Options {
    Backend backend = Backend::kSingleNode;
    ClusterOptions cluster;
    /// Applied per shard (fusion etc.); workers are taken from `cluster`.
    bool op_fusion = false;
    bool op_reorder = false;

    /// Observability sinks (not owned; may be null). The span recorder gets
    /// the *modeled* cluster timeline — one lane per simulated node plus a
    /// driver lane — so the Fig. 10 Ray-vs-Beam shape (parallel vs serial
    /// loading, shuffle barriers) is visible in chrome://tracing. Lane ids
    /// start at kDriverLane to stay clear of real thread lanes.
    obs::SpanRecorder* spans = nullptr;
    obs::MetricsRegistry* metrics = nullptr;

    /// Optional driver-side I/O pool (not owned): sharding and merging the
    /// dataset between segments parallelize across it. Results are
    /// identical with or without a pool.
    ThreadPool* io_pool = nullptr;
  };

  /// Trace lane of the modeled driver; node i uses kDriverLane + 1 + i.
  static constexpr int64_t kDriverLane = 100;

  explicit DistributedExecutor(Options options);

  Result<data::Dataset> Run(data::Dataset dataset,
                            const std::vector<std::unique_ptr<ops::Op>>& ops,
                            DistributedReport* report);

 private:
  Options options_;
};

}  // namespace dj::dist

#endif  // DJ_DIST_DISTRIBUTED_EXECUTOR_H_
