#ifndef DJ_DIST_CLUSTER_H_
#define DJ_DIST_CLUSTER_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dj::dist {

/// Cost model of a simulated cluster. Real clusters are unavailable in this
/// environment, so the distributed executors *actually process* the data on
/// this machine (sharded, so results are bit-identical to a cluster run)
/// and *model* the cluster wall-clock from measured per-shard compute time
/// plus these parameters. The parameters default to NAS/20Gbps-class values
/// scaled to the synthetic corpus sizes (paper Appendix B.3.4).
struct ClusterOptions {
  size_t num_nodes = 1;
  int workers_per_node = 4;

  /// Per-MiB cost of loading input data from shared (NAS) storage. The
  /// paper's corpora are 65-140GB where loading dominates; scaling the
  /// per-MiB rate up reproduces that regime on MiB-sized synthetic data.
  double load_seconds_per_mib = 2.0;
  /// Per-MiB cost of loading from node-local disk (single-node executor).
  double local_load_seconds_per_mib = 0.4;
  /// Per-MiB cost of moving data across the network (shuffles, broadcasts).
  double network_seconds_per_mib = 0.05;
  /// Fixed orchestration cost per node per stage (task scheduling, worker
  /// startup).
  double scheduling_overhead_seconds = 0.02;
  /// Intra-node parallel efficiency: effective speedup of w workers is
  /// w^efficiency (1.0 = perfect scaling).
  double parallel_efficiency = 0.9;

  /// Failure model (paper Sec. 5.1.1 recovery on clusters where worker
  /// loss is routine). Each attempt of a row-local shard task dies with
  /// this probability, drawn from a deterministic RNG seeded by
  /// `failure_seed` — so a seed fully determines which attempts fail, how
  /// many retries a run needs, and the modeled timeline. 0 disables the
  /// failure model. Processing itself is exactly-once regardless: only the
  /// modeled schedule shows the deaths, backoffs, and requeues.
  double node_failure_probability = 0.0;
  uint64_t failure_seed = 42;
  /// Retries allowed per shard task before the run is abandoned. Each
  /// retry is requeued onto the next surviving node's lane after an
  /// exponential backoff of retry_backoff_seconds * 2^attempt.
  int max_retries_per_shard = 3;
  double retry_backoff_seconds = 0.5;
};

/// Modeled + measured timing of a distributed run.
struct DistributedReport {
  std::string backend;
  size_t num_nodes = 0;
  size_t rows_in = 0;
  size_t rows_out = 0;
  uint64_t input_bytes = 0;

  double load_seconds = 0;      ///< modeled data loading time
  double compute_seconds = 0;   ///< modeled parallel compute time
  double shuffle_seconds = 0;   ///< modeled network/shuffle time
  double overhead_seconds = 0;  ///< modeled scheduling overhead
  double total_seconds = 0;     ///< modeled wall-clock

  double measured_compute_seconds = 0;  ///< real local single-thread time

  /// Failure-model outcomes (deterministic per ClusterOptions::failure_seed).
  size_t node_failures = 0;     ///< shard-task attempts that died
  size_t retries = 0;           ///< requeues onto surviving nodes
  double backoff_seconds = 0;   ///< modeled exponential-backoff wait, summed

  std::string ToString() const;
};

/// Effective speedup of `workers` parallel workers under the efficiency
/// model.
double EffectiveSpeedup(int workers, double efficiency);

}  // namespace dj::dist

#endif  // DJ_DIST_CLUSTER_H_
