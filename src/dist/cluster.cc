#include "dist/cluster.h"

#include <cmath>
#include <cstdio>

namespace dj::dist {

double EffectiveSpeedup(int workers, double efficiency) {
  if (workers <= 1) return 1.0;
  return std::pow(static_cast<double>(workers), efficiency);
}

std::string DistributedReport::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%-12s nodes=%-3zu rows %zu -> %zu  load=%.2fs compute=%.2fs "
      "shuffle=%.2fs overhead=%.2fs  total=%.2fs (measured local %.2fs)",
      backend.c_str(), num_nodes, rows_in, rows_out, load_seconds,
      compute_seconds, shuffle_seconds, overhead_seconds, total_seconds,
      measured_compute_seconds);
  std::string out(buf);
  if (node_failures > 0 || retries > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\n%-12s node_failures=%zu retries=%zu backoff=%.2fs "
                  "(all rows still processed exactly once)",
                  backend.c_str(), node_failures, retries, backoff_seconds);
    out += buf;
  }
  return out;
}

}  // namespace dj::dist
