#include "fault/fault.h"

#include <cstdlib>

#include "common/hash.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace dj::fault {
namespace {

/// Records a trigger on the globally installed observability sinks (no-op
/// without them): counters fault.triggers / fault.<name>.triggers plus a
/// "fault:<name>" trace instant.
void RecordTrigger(std::string_view name) {
  if (obs::MetricsRegistry* m = obs::GlobalMetrics(); m != nullptr) {
    m->GetCounter("fault.triggers")->Increment();
    m->GetCounter("fault." + std::string(name) + ".triggers")->Increment();
  }
  if (obs::SpanRecorder* r = obs::GlobalRecorder(); r != nullptr) {
    r->EmitInstant("fault:" + std::string(name), "fault", r->NowMicros());
  }
}

Result<FailPointConfig> ParseMode(std::string_view mode) {
  FailPointConfig config;
  if (mode == "off") {
    config.mode = Mode::kOff;
    return config;
  }
  if (mode == "always" || mode == "1") {
    config.mode = Mode::kAlways;
    return config;
  }
  if (mode.size() > 1 && (mode[0] == 'p' || mode[0] == 'n')) {
    std::string value(mode.substr(1));
    char* end = nullptr;
    if (mode[0] == 'p') {
      double p = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("fault: bad probability '" +
                                       std::string(mode) + "'");
      }
      config.mode = Mode::kProbability;
      config.probability = p;
      return config;
    }
    unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || n == 0) {
      return Status::InvalidArgument("fault: bad nth-hit '" +
                                     std::string(mode) + "' (need n>=1)");
    }
    config.mode = Mode::kNthHit;
    config.nth = n;
    return config;
  }
  return Status::InvalidArgument(
      "fault: unknown mode '" + std::string(mode) +
      "' (expected pF, nK, always, or off)");
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::ReseedPointLocked(const std::string& name, Point* point) {
  point->rng = Rng(seed_ ^ Fnv1a64(name));
  point->hits = 0;
  point->triggers = 0;
}

Status FaultRegistry::Configure(std::string_view spec) {
  // Entries are applied in order so "seed=..." can precede the points it
  // should govern. Parsing errors leave earlier entries applied.
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find_first_of(";,", begin);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view entry = StripAsciiWhitespace(spec.substr(begin, end - begin));
    begin = end + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("fault: bad entry '" +
                                     std::string(entry) +
                                     "' (expected name=mode)");
    }
    std::string_view name = StripAsciiWhitespace(entry.substr(0, eq));
    std::string_view mode = StripAsciiWhitespace(entry.substr(eq + 1));
    if (name == "seed") {
      char* endp = nullptr;
      std::string value(mode);
      unsigned long long s = std::strtoull(value.c_str(), &endp, 10);
      if (endp == nullptr || *endp != '\0') {
        return Status::InvalidArgument("fault: bad seed '" + value + "'");
      }
      SetSeed(s);
      continue;
    }
    DJ_ASSIGN_OR_RETURN(FailPointConfig config, ParseMode(mode));
    Arm(std::string(name), config);
  }
  return Status::Ok();
}

Status FaultRegistry::ConfigureFromEnv() {
  const char* spec = std::getenv("DJ_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return Status::Ok();
  return Configure(spec);
}

void FaultRegistry::Arm(std::string name, FailPointConfig config) {
  MutexLock lock(&mutex_);
  auto [it, inserted] = points_.try_emplace(std::move(name));
  it->second.config = config;
  ReseedPointLocked(it->first, &it->second);
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FaultRegistry::Disarm(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = points_.find(name);
  if (it == points_.end()) return;
  points_.erase(it);
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::Reset() {
  MutexLock lock(&mutex_);
  armed_count_.fetch_sub(static_cast<int>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
  seed_ = kDefaultSeed;
  total_triggers_ = 0;
}

void FaultRegistry::SetSeed(uint64_t seed) {
  MutexLock lock(&mutex_);
  seed_ = seed;
  for (auto& [name, point] : points_) ReseedPointLocked(name, &point);
}

uint64_t FaultRegistry::seed() const {
  MutexLock lock(&mutex_);
  return seed_;
}

bool FaultRegistry::ShouldFail(std::string_view name) {
  bool triggered = false;
  {
    MutexLock lock(&mutex_);
    auto it = points_.find(name);
    if (it == points_.end()) return false;
    Point& point = it->second;
    ++point.hits;
    switch (point.config.mode) {
      case Mode::kOff:
        break;
      case Mode::kAlways:
        triggered = true;
        break;
      case Mode::kProbability:
        triggered = point.rng.Bernoulli(point.config.probability);
        break;
      case Mode::kNthHit:
        triggered = point.hits == point.config.nth;
        break;
    }
    if (triggered) {
      ++point.triggers;
      ++total_triggers_;
    }
  }
  // Observability emission happens outside the registry lock: the metric
  // and span sinks take their own locks.
  if (triggered) RecordTrigger(name);
  return triggered;
}

FailPointStats FaultRegistry::Stats(std::string_view name) const {
  MutexLock lock(&mutex_);
  auto it = points_.find(name);
  if (it == points_.end()) return {};
  return {it->second.hits, it->second.triggers};
}

uint64_t FaultRegistry::TotalTriggers() const {
  MutexLock lock(&mutex_);
  return total_triggers_;
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) out.push_back(name);
  return out;
}

}  // namespace dj::fault
