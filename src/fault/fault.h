#ifndef DJ_FAULT_FAULT_H_
#define DJ_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dj::fault {

/// Seed-deterministic fail-point layer in the fail-point tradition of
/// TiKV/etcd and FoundationDB-style deterministic simulation: production
/// code marks the places where it can die (`DJ_FAULT("io.write.short")`),
/// and tests/operators arm those points by name with a trigger mode. With
/// nothing armed a fail point costs one relaxed atomic load.
///
/// Determinism: every armed point draws from its own RNG seeded from
/// (registry seed, point name), and draws are serialized per point — so the
/// decision sequence of a point (hit #1 triggers, hit #2 doesn't, ...) is a
/// pure function of the seed, independent of thread interleaving. Which
/// thread observes a given decision may vary; the sequence never does.

/// How an armed fail point decides to trigger.
enum class Mode {
  kOff,          ///< armed but never triggers (still counts hits)
  kAlways,       ///< every hit triggers
  kProbability,  ///< each hit triggers with probability `probability`
  kNthHit,       ///< exactly the `nth` hit triggers (1-based), once
};

struct FailPointConfig {
  Mode mode = Mode::kOff;
  double probability = 0.0;  ///< kProbability only
  uint64_t nth = 0;          ///< kNthHit only (1-based)
};

/// Per-point observed counts (for tests and reports).
struct FailPointStats {
  uint64_t hits = 0;
  uint64_t triggers = 0;
};

/// Process-wide fail-point registry. Every trigger bumps the globally
/// installed obs metrics ("fault.triggers" and "fault.<name>.triggers") and
/// emits a trace instant ("fault:<name>", category "fault") on the globally
/// installed span recorder, so injected runs are auditable from their
/// observability artifacts alone.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Applies a `DJ_FAULTS`-syntax spec: semicolon- or comma-separated
  /// `name=mode` entries, where mode is
  ///   `pF`     trigger each hit with probability F in [0,1]  (p0.25)
  ///   `nK`     trigger exactly on the K-th hit, once          (n3)
  ///   `always` trigger every hit
  ///   `off`    disarm the point
  /// plus the pseudo-entry `seed=U` which reseeds the registry (and must
  /// come first to affect the entries after it). Example:
  ///   DJ_FAULTS="seed=7;ckpt.after_blob=n1;io.read.corrupt=p0.1"
  Status Configure(std::string_view spec);

  /// Configure() from the DJ_FAULTS environment variable; unset or empty is
  /// a no-op Ok.
  Status ConfigureFromEnv();

  /// Arms (or with Mode::kOff re-arms as hit-counting-only) a single point.
  void Arm(std::string name, FailPointConfig config);

  /// Removes a point entirely (hits stop being counted).
  void Disarm(std::string_view name);

  /// Disarms everything, zeroes counters, restores the default seed.
  void Reset();

  /// Reseeds the registry and resets every armed point's RNG and counters,
  /// so a seed fully determines the trigger sequences that follow.
  void SetSeed(uint64_t seed);
  uint64_t seed() const;

  /// The fail-point probe: counts a hit on `name` and returns true when the
  /// armed config says this hit triggers. Unarmed names return false.
  bool ShouldFail(std::string_view name);

  /// True when at least one point is armed (lock-free fast path).
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  FailPointStats Stats(std::string_view name) const;
  uint64_t TotalTriggers() const;
  std::vector<std::string> ArmedPoints() const;

 private:
  struct Point {
    FailPointConfig config;
    Rng rng;
    uint64_t hits = 0;
    uint64_t triggers = 0;
  };

  static constexpr uint64_t kDefaultSeed = 0xfa17fa17fa17ULL;

  void ReseedPointLocked(const std::string& name, Point* point)
      DJ_REQUIRES(mutex_);

  mutable Mutex mutex_{"FaultRegistry.mutex"};
  std::map<std::string, Point, std::less<>> points_ DJ_GUARDED_BY(mutex_);
  uint64_t seed_ DJ_GUARDED_BY(mutex_) = kDefaultSeed;
  uint64_t total_triggers_ DJ_GUARDED_BY(mutex_) = 0;
  std::atomic<int> armed_count_{0};
};

/// Convenience probe against the global registry with the cheap
/// nothing-armed fast path inlined.
inline bool ShouldFail(std::string_view name) {
  FaultRegistry& registry = FaultRegistry::Global();
  if (!registry.AnyArmed()) return false;
  return registry.ShouldFail(name);
}

/// RAII helper for tests: configures the global registry on construction
/// and Reset()s it on destruction, so armed points never leak across tests.
class ScopedFaults {
 public:
  explicit ScopedFaults(std::string_view spec) {
    status_ = FaultRegistry::Global().Configure(spec);
  }
  ~ScopedFaults() { FaultRegistry::Global().Reset(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace dj::fault

/// Fail-point probe macro used at injection sites:
///   if (DJ_FAULT("ckpt.after_blob")) return Status::IoError(...);
#define DJ_FAULT(name) (::dj::fault::ShouldFail(name))

#endif  // DJ_FAULT_FAULT_H_
