#include "eval/model_store.h"

#include "data/io.h"
#include "json/parser.h"
#include "json/writer.h"

namespace dj::eval {

Status SaveReferenceModel(const StoredReferenceModel& model,
                          const std::string& path_prefix) {
  DJ_RETURN_IF_ERROR(data::WriteFile(path_prefix + ".djlm",
                                     model.trained.model.Serialize()));
  json::Object manifest;
  manifest.Set("name", json::Value(model.name));
  manifest.Set("training_data", json::Value(model.training_data));
  manifest.Set("tokens_consumed",
               json::Value(static_cast<int64_t>(model.trained.tokens_consumed)));
  manifest.Set("documents_seen",
               json::Value(static_cast<int64_t>(model.trained.documents_seen)));
  manifest.Set("epochs", json::Value(static_cast<int64_t>(model.trained.epochs)));
  return data::WriteFile(path_prefix + ".json",
                         json::Write(json::Value(std::move(manifest)),
                                     {.pretty = true}));
}

Result<StoredReferenceModel> LoadReferenceModel(
    const std::string& path_prefix) {
  DJ_ASSIGN_OR_RETURN(std::string blob, data::ReadFile(path_prefix + ".djlm"));
  DJ_ASSIGN_OR_RETURN(std::string manifest_text,
                      data::ReadFile(path_prefix + ".json"));
  DJ_ASSIGN_OR_RETURN(json::Value manifest, json::ParseStrict(manifest_text));
  DJ_ASSIGN_OR_RETURN(text::NgramLm lm, text::NgramLm::Deserialize(blob));
  StoredReferenceModel out{.name = manifest.GetString("name", ""),
                           .training_data =
                               manifest.GetString("training_data", ""),
                           .trained = TrainedModel{std::move(lm), 0, 0, 0}};
  out.trained.tokens_consumed =
      static_cast<uint64_t>(manifest.GetInt("tokens_consumed", 0));
  out.trained.documents_seen =
      static_cast<size_t>(manifest.GetInt("documents_seen", 0));
  out.trained.epochs = static_cast<int>(manifest.GetInt("epochs", 0));
  return out;
}

Status SaveLeaderboard(const Leaderboard& board, const std::string& path) {
  json::Array entries;
  for (const ReferenceModelEntry& entry : board.entries()) {
    json::Object o;
    o.Set("name", json::Value(entry.name));
    o.Set("training_data", json::Value(entry.training_data));
    o.Set("tokens_trained",
          json::Value(static_cast<int64_t>(entry.tokens_trained)));
    json::Array tasks;
    for (const TaskResult& r : entry.task_results) {
      json::Object task;
      task.Set("task", json::Value(r.task));
      task.Set("score", json::Value(r.score));
      tasks.emplace_back(std::move(task));
    }
    o.Set("task_results", json::Value(std::move(tasks)));
    entries.emplace_back(std::move(o));
  }
  json::Object root;
  root.Set("entries", json::Value(std::move(entries)));
  return data::WriteFile(
      path, json::Write(json::Value(std::move(root)), {.pretty = true}));
}

Result<Leaderboard> LoadLeaderboard(const std::string& path) {
  DJ_ASSIGN_OR_RETURN(std::string text, data::ReadFile(path));
  DJ_ASSIGN_OR_RETURN(json::Value root, json::ParseStrict(text));
  const json::Value* entries =
      root.is_object() ? root.as_object().Find("entries") : nullptr;
  if (entries == nullptr || !entries->is_array()) {
    return Status::Corruption("leaderboard file missing 'entries' array");
  }
  Leaderboard board;
  for (const json::Value& e : entries->as_array()) {
    if (!e.is_object()) return Status::Corruption("bad leaderboard entry");
    ReferenceModelEntry entry;
    entry.name = e.GetString("name", "");
    entry.training_data = e.GetString("training_data", "");
    entry.tokens_trained =
        static_cast<uint64_t>(e.GetInt("tokens_trained", 0));
    const json::Value* tasks = e.as_object().Find("task_results");
    if (tasks != nullptr && tasks->is_array()) {
      for (const json::Value& t : tasks->as_array()) {
        entry.task_results.push_back(
            {t.GetString("task", ""), t.GetDouble("score", 0)});
      }
    }
    board.Register(std::move(entry));
  }
  return board;
}

}  // namespace dj::eval
