#ifndef DJ_EVAL_BENCHMARKS_H_
#define DJ_EVAL_BENCHMARKS_H_

#include <string>
#include <vector>

#include "text/ngram_lm.h"

namespace dj::eval {

/// One proxy benchmark task: a named held-out evaluation text set. The
/// task's score for a model is a perplexity-derived value in [0, 100] —
/// higher means the model predicts the task's domain better. The 16 tasks
/// mirror the paper's 16 HELM core scenarios in name and domain flavor
/// (QA, summarization, sentiment, toxicity, ...), each built from a
/// different synthetic domain/seed so models show per-task variation.
struct BenchmarkTask {
  std::string name;
  std::vector<std::string> eval_texts;
};

struct TaskResult {
  std::string task;
  double score = 0;  ///< 0..100
};

/// A fixed suite of evaluation tasks.
class BenchmarkSuite {
 public:
  /// The 16-task core suite (names after HELM core scenarios).
  static BenchmarkSuite CoreSuite(uint64_t seed = 1616);

  explicit BenchmarkSuite(std::vector<BenchmarkTask> tasks)
      : tasks_(std::move(tasks)) {}

  const std::vector<BenchmarkTask>& tasks() const { return tasks_; }

  /// Evaluates a model on every task.
  std::vector<TaskResult> Evaluate(const text::NgramLm& model) const;

  /// Average score across tasks (the paper's headline number per model).
  static double AverageScore(const std::vector<TaskResult>& results);

  /// Maps a perplexity to the [0,100] proxy score.
  static double PerplexityToScore(double ppl);

 private:
  std::vector<BenchmarkTask> tasks_;
};

}  // namespace dj::eval

#endif  // DJ_EVAL_BENCHMARKS_H_
