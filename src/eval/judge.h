#ifndef DJ_EVAL_JUDGE_H_
#define DJ_EVAL_JUDGE_H_

#include <string>
#include <string_view>
#include <vector>

#include "quality/quality_classifier.h"

namespace dj::eval {

/// Outcome of one pairwise comparison.
enum class Verdict { kWinA, kWinB, kTie };

/// Aggregate of a pairwise evaluation run (paper Table 3 reports wins and
/// ties of model A vs model B).
struct PairwiseResult {
  size_t wins_a = 0;
  size_t wins_b = 0;
  size_t ties = 0;

  double win_rate_a() const {
    size_t total = wins_a + wins_b + ties;
    return total == 0 ? 0 : static_cast<double>(wins_a) / total;
  }
};

/// Deterministic pairwise response judge — the stand-in for GPT-4 API
/// scoring. A response is scored on: classifier quality, helpfulness length
/// (with diminishing returns), lexical diversity, and spam/degeneration
/// penalties; two responses within `tie_margin` are a tie.
class PairwiseJudge {
 public:
  struct Options {
    double tie_margin = 0.035;
    const quality::QualityClassifier* classifier = nullptr;  ///< default GPT3
  };

  PairwiseJudge();
  explicit PairwiseJudge(Options options);

  /// Absolute response score in [0, 1].
  double ScoreResponse(std::string_view instruction,
                       std::string_view response) const;

  Verdict Compare(std::string_view instruction, std::string_view response_a,
                  std::string_view response_b) const;

  /// Judges parallel response lists (same instructions).
  PairwiseResult Evaluate(const std::vector<std::string>& instructions,
                          const std::vector<std::string>& responses_a,
                          const std::vector<std::string>& responses_b) const;

 private:
  Options options_;
};

}  // namespace dj::eval

#endif  // DJ_EVAL_JUDGE_H_
