#include "eval/leaderboard.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace dj::eval {

void Leaderboard::Register(ReferenceModelEntry entry) {
  entry.average_score = BenchmarkSuite::AverageScore(entry.task_results);
  entries_.push_back(std::move(entry));
}

std::vector<std::pair<ReferenceModelEntry, double>> Leaderboard::Rank(
    RankingStrategy strategy) const {
  std::vector<std::pair<ReferenceModelEntry, double>> out;
  if (entries_.empty()) return out;

  // Collect per-task scores aligned across models.
  std::map<std::string, std::vector<double>> task_scores;
  for (const auto& entry : entries_) {
    for (const TaskResult& r : entry.task_results) {
      task_scores[r.task].push_back(r.score);
    }
  }

  for (const auto& entry : entries_) {
    double aggregate = 0;
    switch (strategy) {
      case RankingStrategy::kScoreAverage:
        aggregate = entry.average_score;
        break;
      case RankingStrategy::kRankAverage: {
        // Average of "how many models this one beats" per task.
        double total = 0;
        size_t n = 0;
        for (const TaskResult& r : entry.task_results) {
          const auto& all = task_scores[r.task];
          size_t beaten = 0;
          for (double s : all) {
            if (r.score > s) ++beaten;
          }
          total += all.size() > 1 ? static_cast<double>(beaten) /
                                        static_cast<double>(all.size() - 1)
                                  : 1.0;
          ++n;
        }
        aggregate = n > 0 ? total / static_cast<double>(n) * 100.0 : 0;
        break;
      }
      case RankingStrategy::kNormalizedAverage: {
        double total = 0;
        size_t n = 0;
        for (const TaskResult& r : entry.task_results) {
          const auto& all = task_scores[r.task];
          double lo = *std::min_element(all.begin(), all.end());
          double hi = *std::max_element(all.begin(), all.end());
          total += hi > lo ? (r.score - lo) / (hi - lo) : 1.0;
          ++n;
        }
        aggregate = n > 0 ? total / static_cast<double>(n) * 100.0 : 0;
        break;
      }
    }
    out.emplace_back(entry, aggregate);
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

std::string Leaderboard::ToString(RankingStrategy strategy) const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-4s %-28s %-34s %12s %9s\n", "rank",
                "model", "training data", "tokens", "score");
  out += buf;
  auto ranked = Rank(strategy);
  int rank = 1;
  for (const auto& [entry, aggregate] : ranked) {
    std::snprintf(buf, sizeof(buf), "%-4d %-28s %-34s %12llu %9.2f\n", rank++,
                  entry.name.c_str(), entry.training_data.c_str(),
                  static_cast<unsigned long long>(entry.tokens_trained),
                  aggregate);
    out += buf;
  }
  return out;
}

}  // namespace dj::eval
