#include "eval/scaling.h"

#include <cmath>
#include <cstdio>

namespace dj::eval {

Result<ScalingLaw> ScalingLaw::Fit(const std::vector<ScalingPoint>& points) {
  if (points.size() < 2) {
    return Status::InvalidArgument("scaling fit needs >= 2 points");
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  double n = static_cast<double>(points.size());
  for (const ScalingPoint& p : points) {
    if (p.tokens == 0) {
      return Status::InvalidArgument("scaling fit: tokens must be > 0");
    }
    double x = std::log10(static_cast<double>(p.tokens));
    sx += x;
    sy += p.score;
    sxx += x * x;
    sxy += x * p.score;
  }
  double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    return Status::InvalidArgument(
        "scaling fit: token counts must not all be equal");
  }
  double b = (n * sxy - sx * sy) / denom;
  double a = (sy - b * sx) / n;
  // R².
  double mean_y = sy / n;
  double ss_tot = 0, ss_res = 0;
  for (const ScalingPoint& p : points) {
    double x = std::log10(static_cast<double>(p.tokens));
    double pred = a + b * x;
    ss_tot += (p.score - mean_y) * (p.score - mean_y);
    ss_res += (p.score - pred) * (p.score - pred);
  }
  double r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return ScalingLaw(a, b, r2);
}

double ScalingLaw::Predict(uint64_t tokens) const {
  if (tokens == 0) return a_;
  return a_ + b_ * std::log10(static_cast<double>(tokens));
}

uint64_t ScalingLaw::TokensForScore(double target_score) const {
  if (b_ <= 0) return 0;
  double log_tokens = (target_score - a_) / b_;
  if (log_tokens > 18) return 0;  // beyond any plausible volume
  return static_cast<uint64_t>(std::pow(10.0, std::max(log_tokens, 0.0)));
}

std::string ScalingLaw::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "score = %.3f + %.3f * log10(tokens)  (R^2 = %.3f)", a_, b_,
                r2_);
  return buf;
}

}  // namespace dj::eval
