#ifndef DJ_EVAL_MODEL_STORE_H_
#define DJ_EVAL_MODEL_STORE_H_

#include <string>

#include "common/status.h"
#include "eval/leaderboard.h"
#include "eval/trainer.h"

namespace dj::eval {

/// A persisted reference model: checkpoint plus the traceable metadata the
/// paper binds to it (Sec. 5.3: "model checkpoints binding with traceable
/// training data ... training parameters ... and corresponding evaluation
/// results").
struct StoredReferenceModel {
  std::string name;
  std::string training_data;  ///< recipe/dataset description
  TrainedModel trained;
};

/// Writes `<path>.djlm` (model checkpoint) and `<path>.json` (metadata).
Status SaveReferenceModel(const StoredReferenceModel& model,
                          const std::string& path_prefix);

/// Loads a reference model saved by SaveReferenceModel.
Result<StoredReferenceModel> LoadReferenceModel(
    const std::string& path_prefix);

/// Persists a leaderboard (entries + per-task results) as JSON.
Status SaveLeaderboard(const Leaderboard& board, const std::string& path);
Result<Leaderboard> LoadLeaderboard(const std::string& path);

}  // namespace dj::eval

#endif  // DJ_EVAL_MODEL_STORE_H_
