#include "eval/judge.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "text/lexicons.h"
#include "text/ngram.h"
#include "text/tokenizer.h"

namespace dj::eval {

PairwiseJudge::PairwiseJudge() : PairwiseJudge(Options()) {}

PairwiseJudge::PairwiseJudge(Options options) : options_(options) {
  if (options_.classifier == nullptr) {
    options_.classifier = &quality::QualityClassifier::DefaultGpt3();
  }
}

double PairwiseJudge::ScoreResponse(std::string_view instruction,
                                    std::string_view response) const {
  std::vector<std::string> words = text::TokenizeWordsLower(response);
  if (words.empty()) return 0.0;

  // Quality-classifier component.
  double quality = options_.classifier->Score(response);

  // Helpfulness-length component: saturating in ~60 words.
  double length = 1.0 - std::exp(-static_cast<double>(words.size()) / 30.0);

  // Lexical diversity: type/token ratio.
  std::unordered_set<std::string> types(words.begin(), words.end());
  double diversity =
      static_cast<double>(types.size()) / static_cast<double>(words.size());

  // Degeneration penalty: repeated 3-grams.
  double repetition = text::DuplicateNgramRatio(
      text::HashedWordNgrams(words, 3));

  // Spam penalty.
  const text::Lexicon& flagged = text::Lexicon::FlaggedWords();
  size_t spam = 0;
  for (const std::string& w : words) {
    if (flagged.Contains(w)) ++spam;
  }
  double spam_ratio =
      static_cast<double>(spam) / static_cast<double>(words.size());

  // Instruction-relevance: overlap between instruction content words and
  // the response.
  double relevance = 0.5;
  std::vector<std::string> inst_words = text::TokenizeWordsLower(instruction);
  if (!inst_words.empty()) {
    const text::Lexicon& stop = text::Lexicon::EnglishStopwords();
    size_t content = 0, overlap = 0;
    std::unordered_set<std::string> response_set(words.begin(), words.end());
    for (const std::string& w : inst_words) {
      if (stop.Contains(w) || w.size() < 3) continue;
      ++content;
      if (response_set.count(w) > 0) ++overlap;
    }
    if (content > 0) {
      relevance = static_cast<double>(overlap) / static_cast<double>(content);
    }
  }

  double score = 0.40 * quality + 0.20 * length + 0.15 * diversity +
                 0.15 * relevance - 0.35 * repetition - 0.80 * spam_ratio;
  return std::clamp(score, 0.0, 1.0);
}

Verdict PairwiseJudge::Compare(std::string_view instruction,
                               std::string_view response_a,
                               std::string_view response_b) const {
  double a = ScoreResponse(instruction, response_a);
  double b = ScoreResponse(instruction, response_b);
  if (std::abs(a - b) <= options_.tie_margin) return Verdict::kTie;
  return a > b ? Verdict::kWinA : Verdict::kWinB;
}

PairwiseResult PairwiseJudge::Evaluate(
    const std::vector<std::string>& instructions,
    const std::vector<std::string>& responses_a,
    const std::vector<std::string>& responses_b) const {
  PairwiseResult result;
  size_t n = std::min({instructions.size(), responses_a.size(),
                       responses_b.size()});
  for (size_t i = 0; i < n; ++i) {
    switch (Compare(instructions[i], responses_a[i], responses_b[i])) {
      case Verdict::kWinA:
        ++result.wins_a;
        break;
      case Verdict::kWinB:
        ++result.wins_b;
        break;
      case Verdict::kTie:
        ++result.ties;
        break;
    }
  }
  return result;
}

}  // namespace dj::eval
