#ifndef DJ_EVAL_SCALING_H_
#define DJ_EVAL_SCALING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dj::eval {

/// One (training volume, evaluation score) observation.
struct ScalingPoint {
  uint64_t tokens = 0;
  double score = 0;
};

/// Log-linear scaling fit: score ≈ a + b·log10(tokens). This is the
/// "dynamic expansion of evaluation metrics ... allowing subsequent scaling
/// predictions" of paper Sec. 5.3 — predict post-training capability at
/// larger data volumes from the trend of scores during training.
class ScalingLaw {
 public:
  /// Least-squares fit; needs >= 2 points with distinct token counts.
  static Result<ScalingLaw> Fit(const std::vector<ScalingPoint>& points);

  double intercept() const { return a_; }
  double slope() const { return b_; }

  /// Predicted score at `tokens`.
  double Predict(uint64_t tokens) const;

  /// Tokens needed to reach `target_score` under the fit; returns 0 when the
  /// slope is non-positive (target unreachable by adding data).
  uint64_t TokensForScore(double target_score) const;

  /// R² of the fit on its training points.
  double r_squared() const { return r2_; }

  std::string ToString() const;

 private:
  ScalingLaw(double a, double b, double r2) : a_(a), b_(b), r2_(r2) {}

  double a_ = 0;
  double b_ = 0;
  double r2_ = 0;
};

}  // namespace dj::eval

#endif  // DJ_EVAL_SCALING_H_
