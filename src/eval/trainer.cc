#include "eval/trainer.h"

#include "text/tokenizer.h"

namespace dj::eval {

TrainedModel PretrainReferenceModel(const data::Dataset& dataset,
                                    const TrainOptions& options) {
  text::NgramLm::Options lm_options;
  lm_options.order = options.order;
  TrainedModel out{text::NgramLm(lm_options), 0, 0, 0};
  if (dataset.NumRows() == 0) {
    out.model.Finalize();
    return out;
  }
  while (out.tokens_consumed < options.token_budget &&
         out.epochs < options.max_epochs) {
    ++out.epochs;
    for (size_t i = 0;
         i < dataset.NumRows() && out.tokens_consumed < options.token_budget;
         ++i) {
      std::string_view text = dataset.GetTextAt(i, options.text_key);
      if (text.empty()) continue;
      std::vector<std::string> words = text::TokenizeWordsLower(text);
      if (words.empty()) continue;
      out.model.AddTokens(words);
      out.tokens_consumed += words.size();
      ++out.documents_seen;
    }
  }
  out.model.Finalize();
  return out;
}

}  // namespace dj::eval
