#ifndef DJ_EVAL_TRAINER_H_
#define DJ_EVAL_TRAINER_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "data/dataset.h"
#include "text/ngram_lm.h"

namespace dj::eval {

/// "Pre-training" options for a reference model. The reference model is an
/// n-gram LM (see DESIGN.md substitutions): it plays the role of the
/// LLaMA-1.3B checkpoints in Fig. 7 / Table 2 — trained on a token budget
/// drawn from a dataset, then evaluated on held-out proxy benchmarks.
struct TrainOptions {
  uint64_t token_budget = 1'000'000;  ///< stop after this many tokens
  int order = 3;
  uint64_t seed = 2024;
  /// When the dataset is smaller than the budget, iterate extra epochs
  /// (mirrors the paper's multi-epoch weighting of high-quality corpora).
  int max_epochs = 4;
  /// Which field carries the training text ("text.full" for instruction
  /// triplets).
  std::string text_key = "text";
};

/// Result of a pre-training run.
struct TrainedModel {
  text::NgramLm model;
  uint64_t tokens_consumed = 0;
  size_t documents_seen = 0;
  int epochs = 0;
};

/// Trains an n-gram reference model on `dataset` (the "text" field),
/// consuming documents in order until the token budget is exhausted.
TrainedModel PretrainReferenceModel(const data::Dataset& dataset,
                                    const TrainOptions& options);

}  // namespace dj::eval

#endif  // DJ_EVAL_TRAINER_H_
