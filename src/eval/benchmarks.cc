#include "eval/benchmarks.h"

#include <algorithm>
#include <cmath>

#include "workload/generator.h"

namespace dj::eval {

BenchmarkSuite BenchmarkSuite::CoreSuite(uint64_t seed) {
  // Task -> (domain style, sentence count). Each evaluation set is clean
  // held-out text of a particular domain, generated from a task-specific
  // seed so no task overlaps another or any training corpus.
  struct TaskSpec {
    const char* name;
    workload::Style style;
    size_t docs;
  };
  // Styles are curated-text domains only (wiki/books/Q&A): HELM scenarios
  // are clean benchmark datasets, so the held-out texts must not carry the
  // crawl noise (URLs, boilerplate) that training corpora may contain.
  static const TaskSpec kSpecs[] = {
      {"MMLU", workload::Style::kWiki, 24},
      {"BoolQ", workload::Style::kWiki, 20},
      {"NarrativeQA", workload::Style::kBooks, 20},
      {"NaturalQuestions_closed", workload::Style::kWiki, 20},
      {"NaturalQuestions_open", workload::Style::kWiki, 20},
      {"QuAC", workload::Style::kStackExchange, 20},
      {"HellaSwag", workload::Style::kBooks, 20},
      {"OpenbookQA", workload::Style::kWiki, 20},
      {"TruthfulQA", workload::Style::kWiki, 20},
      {"MSMARCO_regular", workload::Style::kWiki, 20},
      {"MSMARCO_trec", workload::Style::kWiki, 20},
      {"IMDB", workload::Style::kBooks, 20},
      {"XSUM", workload::Style::kBooks, 20},
      {"CNN_DailyMail", workload::Style::kWiki, 24},
      {"CivilComments", workload::Style::kStackExchange, 20},
      {"RAFT", workload::Style::kStackExchange, 20},
  };
  std::vector<BenchmarkTask> tasks;
  uint64_t task_seed = seed;
  for (const TaskSpec& spec : kSpecs) {
    task_seed = task_seed * 6364136223846793005ULL + 1442695040888963407ULL;
    workload::CorpusOptions options;
    options.style = spec.style;
    options.num_docs = spec.docs;
    options.mean_words = 120;
    options.seed = task_seed;
    data::Dataset ds = workload::CorpusGenerator(options).Generate();
    BenchmarkTask task;
    task.name = spec.name;
    for (size_t i = 0; i < ds.NumRows(); ++i) {
      task.eval_texts.emplace_back(ds.GetTextAt(i));
    }
    tasks.push_back(std::move(task));
  }
  return BenchmarkSuite(std::move(tasks));
}

double BenchmarkSuite::PerplexityToScore(double ppl) {
  // Monotone map: ppl 10 -> ~91, 100 -> ~50, 1000 -> ~9. This is the proxy
  // for benchmark accuracy: lower held-out perplexity <=> higher score.
  if (ppl < 1.0) ppl = 1.0;
  double score = 100.0 / (1.0 + std::log10(ppl) / 2.0 * std::log10(ppl));
  return std::clamp(score, 0.0, 100.0);
}

std::vector<TaskResult> BenchmarkSuite::Evaluate(
    const text::NgramLm& model) const {
  std::vector<TaskResult> results;
  results.reserve(tasks_.size());
  for (const BenchmarkTask& task : tasks_) {
    double total_logp = 0;
    size_t n = 0;
    for (const std::string& text : task.eval_texts) {
      total_logp += model.AvgLog10Prob(text);
      ++n;
    }
    double avg_logp = n > 0 ? total_logp / static_cast<double>(n) : -7.0;
    double ppl = std::pow(10.0, -avg_logp);
    results.push_back({task.name, PerplexityToScore(ppl)});
  }
  return results;
}

double BenchmarkSuite::AverageScore(const std::vector<TaskResult>& results) {
  if (results.empty()) return 0;
  double sum = 0;
  for (const TaskResult& r : results) sum += r.score;
  return sum / static_cast<double>(results.size());
}

}  // namespace dj::eval
