#ifndef DJ_EVAL_LEADERBOARD_H_
#define DJ_EVAL_LEADERBOARD_H_

#include <string>
#include <vector>

#include "eval/benchmarks.h"

namespace dj::eval {

/// A registered reference model (paper Sec. 5.3): an evaluated checkpoint
/// bound to its traceable training data and configuration, enabling
/// comparison across data recipes.
struct ReferenceModelEntry {
  std::string name;
  std::string training_data;   ///< recipe / dataset description
  uint64_t tokens_trained = 0;
  std::vector<TaskResult> task_results;
  double average_score = 0;
};

/// Ranking strategies for the leaderboard (paper: "ranking averaging,
/// score normalised averaging or other customised strategies").
enum class RankingStrategy {
  kScoreAverage,       ///< mean raw score across tasks
  kRankAverage,        ///< mean per-task rank (lower is better -> inverted)
  kNormalizedAverage,  ///< per-task min-max normalized scores averaged
};

/// Leaderboard-style comparison of reference models.
class Leaderboard {
 public:
  /// Registers a model; average_score is computed from task_results.
  void Register(ReferenceModelEntry entry);

  const std::vector<ReferenceModelEntry>& entries() const { return entries_; }

  /// Entries sorted best-first under the given strategy, paired with their
  /// aggregate value.
  std::vector<std::pair<ReferenceModelEntry, double>> Rank(
      RankingStrategy strategy) const;

  /// Rendered table (name, data, tokens, aggregate).
  std::string ToString(RankingStrategy strategy) const;

 private:
  std::vector<ReferenceModelEntry> entries_;
};

}  // namespace dj::eval

#endif  // DJ_EVAL_LEADERBOARD_H_
